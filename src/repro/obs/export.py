"""Exporters: JSONL traces, Prometheus text exposition, ASCII flamegraphs.

Three ways out of the observability layer:

* :func:`trace_to_jsonl` — one JSON object per span, depth-first, each line
  carrying ``name/path/depth/ids/start/duration/tags/events`` so downstream
  tools can stream-filter without reassembling the tree (and
  :func:`assemble_trace` reassembles one request's tree by ``trace_id``
  when a picture *is* wanted);
* :func:`prometheus_exposition` / :func:`parse_prometheus` — the classic
  ``# HELP``/``# TYPE``/sample text format and a parser that round-trips
  it (a test pins ``parse(expose(registry)) == registry samples``).
  Histogram bucket lines carry OpenMetrics-style exemplars
  (``... 5 # {trace_id="worker-1a"} 0.043``) linking slow buckets to
  request traces; the parser tolerates and skips the trailer;
* :func:`render_flamegraph` / :func:`render_timeline` — terminal pictures
  of a finished trace, sharing canvas conventions with
  :mod:`repro.util.ascii_plot` (via :func:`repro.util.ascii_plot.ascii_bar`).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.util.ascii_plot import ascii_bar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer


# -- JSONL trace dump --------------------------------------------------------


def trace_to_jsonl(tracer: "Tracer") -> str:
    """Serialize every recorded span, one JSON object per line, depth-first."""
    lines: list[str] = []
    for root in list(tracer.roots):
        path: list[str] = []
        for span, depth in root.walk():
            del path[depth:]
            path.append(span.name)
            lines.append(
                json.dumps(
                    {
                        "name": span.name,
                        "path": "/".join(path),
                        "depth": depth,
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "start": round(span.start, 9),
                        "duration": round(span.duration, 9),
                        "tags": dict(span.tags),
                        "events": [dict(e) for e in span.events],
                    },
                    sort_keys=True,
                    default=str,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_trace_jsonl(text: str) -> list[dict]:
    """Parse a JSONL trace dump back into flat span records."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


class TraceNode:
    """A span revived from flat records — enough shape for the renderers."""

    __slots__ = (
        "name", "start", "end", "tags", "events", "children",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, record: dict) -> None:
        self.name = str(record.get("name", "?"))
        self.start = float(record.get("start", 0.0))
        self.end = self.start + float(record.get("duration", 0.0))
        self.tags = dict(record.get("tags", {}))
        self.events = [dict(e) for e in record.get("events", [])]
        self.children: list[TraceNode] = []
        self.trace_id = str(record.get("trace_id", ""))
        self.span_id = str(record.get("span_id", ""))
        parent = record.get("parent_id")
        self.parent_id = str(parent) if parent is not None else None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self, depth: int = 0):
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


def assemble_trace(records: list[dict], trace_id: str | None = None) -> list[TraceNode]:
    """Rebuild span trees from flat JSONL records via span/parent ids.

    With ``trace_id`` given, only that request's spans are kept — the roots
    returned are exactly what ``hslb trace --id`` renders.  Records whose
    parent is absent from the selection become roots themselves, so a
    partial dump still renders.  Input order is preserved among siblings.
    """
    picked = [
        r for r in records
        if trace_id is None or str(r.get("trace_id", "")) == trace_id
    ]
    nodes = [TraceNode(r) for r in picked]
    by_id = {n.span_id: n for n in nodes if n.span_id}
    roots: list[TraceNode] = []
    for node in nodes:
        parent = by_id.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


# -- Prometheus text exposition ----------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text format (version 0.0.4).

    Histogram bucket samples whose native bucket holds an exemplar get the
    OpenMetrics trailer ``# {trace_id="..."} <observed value>`` appended —
    the link from a slow latency bucket to the request trace that filled it.
    """
    lines: list[str] = []
    for metric in registry:
        exemplars: dict[tuple, tuple[str, float]] = {}
        if isinstance(metric, Histogram):
            for key, le, trace_id, value in metric.exemplars():
                exemplars[(key, le)] = (trace_id, value)
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for name, key, value in metric.samples():
            if key:
                labels = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
                line = f"{name}{{{labels}}} {value:g}"
            else:
                line = f"{name} {value:g}"
            if name.endswith("_bucket"):
                le = dict(key).get("le")
                base = tuple(kv for kv in key if kv[0] != "le")
                hit = exemplars.get((base, le))
                if hit is not None:
                    trace_id, observed = hit
                    line += f' # {{trace_id="{_escape_label(trace_id)}"}} {observed:g}'
            lines.append(line)
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_label_block(line: str, start: int) -> tuple[tuple[tuple[str, str], ...], int]:
    """Parse ``{k="v",...}`` starting at ``line[start] == '{'``.

    Returns the label tuple and the index one past the closing brace.  The
    scan is quote-aware, so escaped quotes/backslashes and braces inside
    label values never end the block early.
    """
    labels: list[tuple[str, str]] = []
    i = start + 1
    while i < len(line) and line[i] != "}":
        eq = line.index("=", i)
        key = line[i:eq]
        if line[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {line!r}")
        j = eq + 2
        chunk: list[str] = []
        while line[j] != '"':
            if line[j] == "\\":
                esc = line[j + 1]
                chunk.append({"n": "\n", '"': '"', "\\": "\\"}[esc])
                j += 2
            else:
                chunk.append(line[j])
                j += 1
        labels.append((key, "".join(chunk)))
        i = j + 1
        if i < len(line) and line[i] == ",":
            i += 1
    if i >= len(line):
        raise ValueError(f"unterminated label block in {line!r}")
    return tuple(labels), i + 1


def parse_prometheus(text: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse exposition text into ``{sample_name: {label_key: value}}``.

    Understands exactly what :func:`prometheus_exposition` emits (quoted
    label values with escapes, ``# HELP``/``# TYPE`` comments, exemplar
    trailers on bucket lines — skipped, the sample value is what counts);
    used by the round-trip test, the ``hslb top`` dashboard, and ``repro
    metrics`` consumers in shell pipelines.
    """
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            brace = line.find("{")
            space = line.find(" ")
            if brace != -1 and (space == -1 or brace < space):
                name = line[:brace]
                key_tuple, after = _parse_label_block(line, brace)
                rest = line[after:].split()
            else:
                parts = line.split()
                name, rest = parts[0], parts[1:]
                key_tuple = ()
            if not rest:
                raise ValueError("sample line without a value")
            value = float(rest[0])
        except ValueError as exc:
            raise ValueError(
                f"not Prometheus exposition text ({exc}): {line!r}"
            ) from None
        out.setdefault(name.strip(), {})[key_tuple] = value
    return out


def registry_samples(
    registry: MetricsRegistry,
) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """The registry's samples in the same shape :func:`parse_prometheus` returns."""
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for metric in registry:
        for name, key, value in metric.samples():
            out.setdefault(name, {})[tuple(key)] = value
    return out


# -- ASCII flamegraph / timeline ---------------------------------------------


def _roots_of(source) -> list:
    """Accept a Tracer, or any list of span-shaped roots (TraceNode, Span)."""
    return list(source.roots) if hasattr(source, "roots") else list(source)


def render_flamegraph(tracer: "Tracer", *, width: int = 72) -> str:
    """Indented span tree with duration bars — a terminal flamegraph.

    ``tracer`` may be the live tracer or a list of assembled roots (see
    :func:`assemble_trace`), so one request's tree renders the same way a
    whole process trace does.  Bar lengths are proportional to each span's
    share of its root's duration, so a glance shows where the pipeline's
    time went::

        hslb.run                 1.00s  ################################
          gather                 0.62s  ####################
          fit                    0.21s  ######
          solve                  0.15s  ####
    """
    roots = _roots_of(tracer)
    if not roots:
        return "(empty trace)"
    label_width = max(
        len("  " * depth + span.name) for root in roots for span, depth in root.walk()
    )
    bar_width = max(8, width - label_width - 12)
    lines: list[str] = []
    for root in roots:
        total = root.duration or max(
            (s.duration for s, _ in root.walk()), default=0.0
        )
        for span, depth in root.walk():
            label = "  " * depth + span.name
            share = (span.duration / total) if total > 0 else 0.0
            bar = ascii_bar(share, width=bar_width)
            suffix = f" +{len(span.events)}ev" if span.events else ""
            lines.append(
                f"{label:<{label_width}}  {span.duration * 1e3:9.3f}ms  {bar}{suffix}"
            )
    return "\n".join(lines)


def render_timeline(tracer: "Tracer", *, width: int = 72) -> str:
    """Gantt-style view: each span as a ``[===]`` segment on a shared clock.

    Accepts the live tracer or a list of assembled roots, like
    :func:`render_flamegraph`.
    """
    roots = _roots_of(tracer)
    spans = [(s, d) for root in roots for s, d in root.walk()]
    if not spans:
        return "(empty trace)"
    t0 = min(s.start for s, _ in spans)
    t1 = max((s.end if s.end is not None else s.start) for s, _ in spans)
    span_range = (t1 - t0) or 1.0
    label_width = max(len("  " * d + s.name) for s, d in spans)
    track = max(16, width - label_width - 3)
    lines = [f"{'':<{label_width}}  0s .. {span_range:.3g}s"]
    for span, depth in spans:
        lo = int((span.start - t0) / span_range * (track - 1))
        hi = int(((span.end if span.end is not None else span.start) - t0)
                 / span_range * (track - 1))
        row = [" "] * track
        row[lo] = "["
        row[min(hi + 1, track - 1)] = "]"
        for i in range(lo + 1, min(hi + 1, track - 1)):
            row[i] = "="
        lines.append(f"{'  ' * depth + span.name:<{label_width}}  {''.join(row)}")
    return "\n".join(lines)
