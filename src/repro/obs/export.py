"""Exporters: JSONL traces, Prometheus text exposition, ASCII flamegraphs.

Three ways out of the observability layer:

* :func:`trace_to_jsonl` — one JSON object per span, depth-first, each line
  carrying ``name/path/depth/start/duration/tags/events`` so downstream
  tools can stream-filter without reassembling the tree;
* :func:`prometheus_exposition` / :func:`parse_prometheus` — the classic
  ``# HELP``/``# TYPE``/sample text format and a parser that round-trips
  it (a test pins ``parse(expose(registry)) == registry samples``);
* :func:`render_flamegraph` / :func:`render_timeline` — terminal pictures
  of a finished trace, sharing canvas conventions with
  :mod:`repro.util.ascii_plot` (via :func:`repro.util.ascii_plot.ascii_bar`).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.util.ascii_plot import ascii_bar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer


# -- JSONL trace dump --------------------------------------------------------


def trace_to_jsonl(tracer: "Tracer") -> str:
    """Serialize every recorded span, one JSON object per line, depth-first."""
    lines: list[str] = []
    for root in list(tracer.roots):
        path: list[str] = []
        for span, depth in root.walk():
            del path[depth:]
            path.append(span.name)
            lines.append(
                json.dumps(
                    {
                        "name": span.name,
                        "path": "/".join(path),
                        "depth": depth,
                        "start": round(span.start, 9),
                        "duration": round(span.duration, 9),
                        "tags": dict(span.tags),
                        "events": [dict(e) for e in span.events],
                    },
                    sort_keys=True,
                    default=str,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_trace_jsonl(text: str) -> list[dict]:
    """Parse a JSONL trace dump back into flat span records."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- Prometheus text exposition ----------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text format (version 0.0.4)."""
    lines: list[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for name, key, value in metric.samples():
            if key:
                labels = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
                lines.append(f"{name}{{{labels}}} {value:g}")
            else:
                lines.append(f"{name} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse exposition text into ``{sample_name: {label_key: value}}``.

    Understands exactly what :func:`prometheus_exposition` emits (quoted
    label values with escapes, ``# HELP``/``# TYPE`` comments); used by the
    round-trip test and by ``repro metrics`` consumers in shell pipelines.
    """
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels_text, value_text = rest.rsplit("}", 1)
            labels: list[tuple[str, str]] = []
            i = 0
            while i < len(labels_text):
                eq = labels_text.index("=", i)
                key = labels_text[i:eq]
                if labels_text[eq + 1] != '"':
                    raise ValueError(f"unquoted label value in {line!r}")
                j = eq + 2
                chunk: list[str] = []
                while labels_text[j] != '"':
                    if labels_text[j] == "\\":
                        esc = labels_text[j + 1]
                        chunk.append({"n": "\n", '"': '"', "\\": "\\"}[esc])
                        j += 2
                    else:
                        chunk.append(labels_text[j])
                        j += 1
                labels.append((key, "".join(chunk)))
                i = j + 1
                if i < len(labels_text) and labels_text[i] == ",":
                    i += 1
            key_tuple = tuple(labels)
        else:
            parts = line.split()
            name, value_text = parts[0], parts[-1]
            key_tuple = ()
        out.setdefault(name.strip(), {})[key_tuple] = float(value_text)
    return out


def registry_samples(
    registry: MetricsRegistry,
) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """The registry's samples in the same shape :func:`parse_prometheus` returns."""
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for metric in registry:
        for name, key, value in metric.samples():
            out.setdefault(name, {})[tuple(key)] = value
    return out


# -- ASCII flamegraph / timeline ---------------------------------------------


def render_flamegraph(tracer: "Tracer", *, width: int = 72) -> str:
    """Indented span tree with duration bars — a terminal flamegraph.

    Bar lengths are proportional to each span's share of its root's
    duration, so a glance shows where the pipeline's time went::

        hslb.run                 1.00s  ################################
          gather                 0.62s  ####################
          fit                    0.21s  ######
          solve                  0.15s  ####
    """
    roots = list(tracer.roots)
    if not roots:
        return "(empty trace)"
    label_width = max(
        len("  " * depth + span.name) for root in roots for span, depth in root.walk()
    )
    bar_width = max(8, width - label_width - 12)
    lines: list[str] = []
    for root in roots:
        total = root.duration or max(
            (s.duration for s, _ in root.walk()), default=0.0
        )
        for span, depth in root.walk():
            label = "  " * depth + span.name
            share = (span.duration / total) if total > 0 else 0.0
            bar = ascii_bar(share, width=bar_width)
            suffix = f" +{len(span.events)}ev" if span.events else ""
            lines.append(
                f"{label:<{label_width}}  {span.duration * 1e3:9.3f}ms  {bar}{suffix}"
            )
    return "\n".join(lines)


def render_timeline(tracer: "Tracer", *, width: int = 72) -> str:
    """Gantt-style view: each span as a ``[===]`` segment on a shared clock."""
    roots = list(tracer.roots)
    spans = [(s, d) for root in roots for s, d in root.walk()]
    if not spans:
        return "(empty trace)"
    t0 = min(s.start for s, _ in spans)
    t1 = max((s.end if s.end is not None else s.start) for s, _ in spans)
    span_range = (t1 - t0) or 1.0
    label_width = max(len("  " * d + s.name) for s, d in spans)
    track = max(16, width - label_width - 3)
    lines = [f"{'':<{label_width}}  0s .. {span_range:.3g}s"]
    for span, depth in spans:
        lo = int((span.start - t0) / span_range * (track - 1))
        hi = int(((span.end if span.end is not None else span.start) - t0)
                 / span_range * (track - 1))
        row = [" "] * track
        row[lo] = "["
        row[min(hi + 1, track - 1)] = "]"
        for i in range(lo + 1, min(hi + 1, track - 1)):
            row[i] = "="
        lines.append(f"{'  ' * depth + span.name:<{label_width}}  {''.join(row)}")
    return "\n".join(lines)
