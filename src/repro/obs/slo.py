"""Rolling-window SLO tracking: per-priority quantiles, rates, burn rates.

The serving tier promises different things to different admission classes
(an interactive caller cares about p99 latency; background batch work
cares about not being shed).  :class:`SLOTracker` measures those promises
over a *rolling time window* — not since process start — so a burst of
slowness shows up immediately and ages out once resolved.

Mechanics: the window is a ring of coarse time buckets.  Each request
outcome lands in the bucket covering ``now`` under its priority; snapshots
aggregate the buckets still inside the window.  The clock is injectable so
tests drive time by hand and stay deterministic.

**Burn rate** follows the SRE convention: the rate the error budget is
being consumed, ``(bad fraction) / (1 - objective)``.  At 1.0 the budget
burns exactly as fast as it accrues; above 1.0 the target will be missed
if the rate holds.  A latency SLO counts a request "bad" when it is slower
than the threshold *or* failed outright; an availability SLO counts sheds
and errors only.

Feeds: :meth:`repro.service.frontend.AsyncServingTier.submit` and the
batch executor report every outcome here; the ``slo_*`` gauges exported by
:meth:`SLOTracker.export` ride the normal Prometheus scrape.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

#: Outcomes a request can land in, from the tracker's point of view.
OUTCOMES = ("ok", "degraded", "shed", "error")

#: Raw latency samples retained per (priority, bucket); beyond this the
#: quantile degrades gracefully to the retained subsample.
BUCKET_SAMPLE_CAP = 512


@dataclass(frozen=True)
class SLOTarget:
    """One objective: e.g. "99% of interactive requests under 250 ms".

    ``latency`` is the per-request slowness threshold in seconds; ``None``
    makes this an availability objective (only sheds/errors burn budget).
    ``priority=None`` applies the target across all classes.
    """

    name: str
    objective: float = 0.99
    priority: str | None = None
    latency: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.latency is not None and self.latency <= 0:
            raise ValueError("latency threshold must be positive")


#: Default targets: the tier's standing promises unless the caller says
#: otherwise.  Interactive requests get a latency SLO; everything gets an
#: availability SLO.
DEFAULT_TARGETS = (
    SLOTarget("interactive_latency", 0.99, "interactive", 0.25),
    SLOTarget("availability", 0.999),
)


@dataclass
class _Bucket:
    """One time slice of one priority's outcomes."""

    epoch: int = -1
    counts: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)

    def clear(self, epoch: int) -> None:
        self.epoch = epoch
        self.counts.clear()
        self.latencies.clear()


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (pos - lo)


class SLOTracker:
    """Rolling-window outcome accounting against a set of SLO targets."""

    def __init__(
        self,
        targets: tuple[SLOTarget, ...] = DEFAULT_TARGETS,
        *,
        window: float = 60.0,
        buckets: int = 12,
        clock=time.monotonic,
    ) -> None:
        if window <= 0 or buckets <= 0:
            raise ValueError("window and buckets must be positive")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO target names")
        self.targets = tuple(targets)
        self.window = float(window)
        self.n_buckets = int(buckets)
        self.width = self.window / self.n_buckets
        self._clock = clock
        self._lock = threading.Lock()
        self._rings: dict[str, list[_Bucket]] = {}

    # -- recording ---------------------------------------------------------

    def record(
        self, priority: str, latency: float | None, outcome: str = "ok"
    ) -> None:
        """Book one finished request: its class, latency, and how it ended.

        ``latency`` may be ``None`` for requests that never ran (sheds).
        """
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        now = self._clock()
        epoch = int(now / self.width)
        with self._lock:
            ring = self._rings.get(priority)
            if ring is None:
                ring = self._rings[priority] = [
                    _Bucket() for _ in range(self.n_buckets)
                ]
            bucket = ring[epoch % self.n_buckets]
            if bucket.epoch != epoch:
                bucket.clear(epoch)
            bucket.counts[outcome] = bucket.counts.get(outcome, 0) + 1
            if latency is not None and len(bucket.latencies) < BUCKET_SAMPLE_CAP:
                bucket.latencies.append(float(latency))

    # -- aggregation -------------------------------------------------------

    def _window_view(self, now: float) -> dict[str, tuple[dict[str, int], list[float]]]:
        """Live counts and latencies per priority, stale buckets excluded."""
        floor = int(now / self.width) - self.n_buckets + 1
        view: dict[str, tuple[dict[str, int], list[float]]] = {}
        with self._lock:
            for priority, ring in self._rings.items():
                counts: dict[str, int] = {}
                latencies: list[float] = []
                for bucket in ring:
                    if bucket.epoch < floor:
                        continue
                    for outcome, n in bucket.counts.items():
                        counts[outcome] = counts.get(outcome, 0) + n
                    latencies.extend(bucket.latencies)
                if counts:
                    view[priority] = (counts, latencies)
        return view

    def _burn(self, target: SLOTarget, counts: dict[str, int], latencies: list[float]) -> tuple[float, int, int]:
        """(burn_rate, bad, total) for one target over one outcome pool."""
        total = sum(counts.values())
        if total == 0:
            return 0.0, 0, 0
        bad = counts.get("shed", 0) + counts.get("error", 0)
        if target.latency is not None:
            bad += sum(1 for v in latencies if v > target.latency)
        return (bad / total) / (1.0 - target.objective), bad, total

    def snapshot(self, now: float | None = None) -> dict:
        """The whole window as JSON-ready numbers.

        ``priorities`` carries per-class p50/p99/p999 latency and
        shed/error/degraded rates; ``targets`` carries each SLO's burn
        rate, bad/total counts, and a ``healthy`` verdict (burn <= 1).
        """
        now = self._clock() if now is None else now
        view = self._window_view(now)
        priorities: dict[str, dict] = {}
        for priority, (counts, latencies) in sorted(view.items()):
            total = sum(counts.values())
            latencies = sorted(latencies)
            priorities[priority] = {
                "total": total,
                "p50": _quantile(latencies, 0.50),
                "p99": _quantile(latencies, 0.99),
                "p999": _quantile(latencies, 0.999),
                "shed_rate": counts.get("shed", 0) / total,
                "error_rate": counts.get("error", 0) / total,
                "degraded_rate": counts.get("degraded", 0) / total,
            }
        targets: dict[str, dict] = {}
        for target in self.targets:
            if target.priority is None:
                counts: dict[str, int] = {}
                latencies = []
                for c, lat in view.values():
                    for outcome, n in c.items():
                        counts[outcome] = counts.get(outcome, 0) + n
                    latencies.extend(lat)
            else:
                counts, latencies = view.get(target.priority, ({}, []))
            burn, bad, total = self._burn(target, counts, latencies)
            targets[target.name] = {
                "objective": target.objective,
                "priority": target.priority,
                "latency_threshold": target.latency,
                "burn_rate": burn,
                "bad": bad,
                "total": total,
                "healthy": burn <= 1.0,
            }
        return {"window": self.window, "priorities": priorities, "targets": targets}

    def export(self, registry: MetricsRegistry) -> None:
        """Publish the current window as ``slo_*`` gauges on ``registry``."""
        snap = self.snapshot()
        lat = registry.gauge(
            "slo_latency_seconds", "Rolling-window latency quantile by priority"
        )
        rate = registry.gauge(
            "slo_outcome_rate", "Rolling-window shed/error/degraded fraction"
        )
        burn = registry.gauge(
            "slo_burn_rate", "Error-budget burn rate per SLO target (1.0 = at budget)"
        )
        total = registry.gauge(
            "slo_window_requests", "Requests in the rolling window by priority"
        )
        for priority, stats in snap["priorities"].items():
            for q in ("p50", "p99", "p999"):
                lat.set(stats[q], priority=priority, quantile=q)
            for kind in ("shed", "error", "degraded"):
                rate.set(stats[f"{kind}_rate"], priority=priority, kind=kind)
            total.set(stats["total"], priority=priority)
        for name, stats in snap["targets"].items():
            burn.set(stats["burn_rate"], target=name)

    def render(self, width: int = 60) -> str:
        """Terminal summary of the window — the `hslb top` SLO panel."""
        snap = self.snapshot()
        lines = [f"SLO window: {snap['window']:g}s"]
        for priority, stats in snap["priorities"].items():
            lines.append(
                f"  {priority:<12} n={stats['total']:<5d}"
                f" p50={stats['p50'] * 1e3:8.2f}ms p99={stats['p99'] * 1e3:8.2f}ms"
                f" shed={stats['shed_rate']:.1%} err={stats['error_rate']:.1%}"
            )
        for name, stats in snap["targets"].items():
            mark = "ok" if stats["healthy"] else "BURNING"
            lines.append(
                f"  [{mark:>7}] {name}: burn={stats['burn_rate']:.2f}"
                f" ({stats['bad']}/{stats['total']} bad, slo={stats['objective']:g})"
            )
        return "\n".join(lines)
