"""Chaos harness invariants: every request answered, bit-identical replays.

The deterministic suite drives the *in-process* chaos mode (faults arrive
as typed exceptions, no real processes), so the invariants are exact:

* **no lost requests** — every submit returns an envelope or raises a
  typed service error, under any injected fault mix;
* **determinism** — two services with the same chaos seed answer an
  identical request stream with bit-identical (status, source, allocation,
  objective) sequences;
* **accounting** — the metrics ledger adds up: answered requests equal
  hits + solves + degraded + rejected.

One end-to-end case runs the *in-worker* mode: real ``os._exit`` crashes
inside a supervised pool, recovered without restarting the service.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosPlan
from repro.service import (
    AllocationService,
    BatchExecutor,
    ResiliencePolicy,
    RetryPolicy,
    ServiceError,
    ServiceRejectedError,
    ServiceTimeoutError,
)
from tests.service.conftest import CURVES, make_request

#: A hostile but recoverable mix: ~45% of attempts are faulted.
MIX = dict(crash_rate=0.2, hang_rate=0.1, slow_rate=0.05, corrupt_rate=0.1)


def chaos_service(seed: int = 42, **plan_kwargs) -> AllocationService:
    plan_kwargs = {**MIX, "slow_seconds": 0.0, **plan_kwargs}
    return AllocationService(
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        ),
        chaos=ChaosPlan(seed=seed, **plan_kwargs),
        sleeper=lambda _s: None,
    )


def request_stream(count: int = 60) -> list:
    """Deterministic mix of families x budgets with deliberate repeats."""
    budgets = (24, 32, 48, 64)
    out = []
    for i in range(count):
        scale = 1.0 + 0.5 * (i % 3)
        curves = {
            name: {**params, "a": params["a"] * scale}
            for name, params in CURVES.items()
        }
        out.append(make_request(budgets[(i // 3) % 4], curves=curves))
    return out


def drive(service: AllocationService, requests) -> list[tuple]:
    """Submit every request; typed failures become tuples too (never lost)."""
    results = []
    for request in requests:
        try:
            r = service.submit(request, deadline=30.0)
            results.append(
                (r.fingerprint, r.status, r.source,
                 tuple(sorted(r.allocation.items())), r.objective)
            )
        except (ServiceRejectedError, ServiceTimeoutError) as exc:
            results.append((request.fingerprint(), type(exc).__name__,
                            "rejected", (), None))
    return results


def test_no_request_is_lost_under_chaos():
    service = chaos_service()
    requests = request_stream()
    results = drive(service, requests)
    assert len(results) == len(requests)
    # Under this recoverable mix with retries, everything gets an answer.
    assert all(source != "rejected" for *_, source, _a, _o in
               [(r[0], r[1], r[2], r[3], r[4]) for r in results])
    assert service.metrics.worker_crashes + service.metrics.worker_hangs > 0


def test_seeded_chaos_replays_bit_identically():
    requests = request_stream()
    first = drive(chaos_service(seed=42), requests)
    second = drive(chaos_service(seed=42), requests)
    assert first == second
    third = drive(chaos_service(seed=43), requests)
    assert third != first  # a different seed injects a different storm


def test_unrecoverable_chaos_still_answers_every_request():
    """Rungs below exact absorb even a non-recovering fault storm."""
    service = chaos_service(crash_rate=0.95, hang_rate=0.0, slow_rate=0.0,
                            corrupt_rate=0.0)
    requests = request_stream(24)
    results = drive(service, requests)
    assert len(results) == len(requests)
    sources = {source for _fp, _st, source, _a, _o in results}
    assert "greedy" in sources  # the ladder carried the load


def test_metrics_ledger_adds_up_under_chaos():
    service = chaos_service()
    requests = request_stream()
    drive(service, requests)
    m = service.metrics
    answered = (
        m.cache_hits + m.cold_solves + m.warm_solves + m.solve_errors
        + m.degraded_stale + m.degraded_greedy + m.rejections
    )
    assert m.requests == answered
    assert m.requests == len(requests)
    snap = m.snapshot()["resilience"]
    assert snap["worker_crashes"] == m.worker_crashes
    assert snap["retries"] == m.retries


def test_typed_errors_only_under_deadline():
    """A deadline run never hangs and never dies on an untyped exception."""
    service = chaos_service()
    for request in request_stream(24):
        try:
            response = service.submit(request, deadline=5.0)
            assert response.fingerprint == request.fingerprint()
        except ServiceError:
            pass  # typed: the contract allows refusal, not silence


@pytest.mark.slow
def test_end_to_end_pool_crash_recovery():
    """Real worker deaths (``os._exit``) inside the supervised fan-out.

    First attempts on every unique request crash physically; retries are
    immune, so the batch must recover every answer exactly — without the
    service process restarting.
    """
    service = AllocationService(
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            restart_budget=16,
            hang_timeout=60.0,
        ),
        chaos=ChaosPlan(seed=1, crash_rate=0.97, immune_after=1),
    )
    requests = request_stream(8)
    executor = BatchExecutor(service, max_workers=2, deadline=30.0)
    responses = executor.run(requests)
    assert len(responses) == len(requests)
    assert all(r.ok for r in responses)
    assert all(r.source in ("exact", "cache") for r in responses)
    assert service.metrics.worker_crashes > 0
    assert service.metrics.worker_restarts > 0
