"""Supervised worker pool: health, crash containment, bounded restarts.

Real-process cases (``os._exit``, sleeps) keep their work tiny so the suite
stays fast; everything policy-shaped runs on the inline executor.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.service import (
    InlineExecutor,
    RestartBudgetError,
    SupervisedWorkerPool,
    WorkerCrashError,
    WorkerHangError,
)
from repro.service.supervisor import sleep_until_done, wait_any


# Pool tasks must be module-level (picklable) for the real-process cases.
def _double(x):
    return 2 * x


def _die(code):
    os._exit(code)


def _nap(seconds):
    time.sleep(seconds)
    return "woke"


def _raise_crash():
    raise WorkerCrashError(worker_id=-1, detail="injected")


def _raise_hang():
    raise WorkerHangError(worker_id=-1, timeout=0.0)


def test_inline_pool_round_trip():
    with SupervisedWorkerPool.inline(2) as pool:
        d = pool.submit(_double, 21)
        assert pool.result(d) == 42
        snap = pool.snapshot()
        assert snap["restarts_used"] == 0
        health = snap["workers"][d.worker_id]
        assert health["dispatched"] == 1
        assert health["completed"] == 1


def test_unharvested_dispatches_spread_across_slots():
    with SupervisedWorkerPool.inline(2) as pool:
        first = pool.submit(_double, 1)
        second = pool.submit(_double, 2)
        assert first.worker_id != second.worker_id
        pool.result(first)
        pool.result(second)


def test_task_exceptions_propagate_unwrapped():
    with SupervisedWorkerPool.inline(1) as pool:
        d = pool.submit(_raise_value_error)
        with pytest.raises(ValueError, match="task's own"):
            pool.result(d)
        # A task failure is not a worker death: no restart spent.
        assert pool.snapshot()["restarts_used"] == 0


def _raise_value_error():
    raise ValueError("task's own failure")


def test_simulated_crash_is_booked_and_slot_replaced():
    with SupervisedWorkerPool.inline(1, restart_budget=2) as pool:
        d = pool.submit(_raise_crash)
        with pytest.raises(WorkerCrashError):
            pool.result(d)
        snap = pool.snapshot()
        assert snap["workers"][0]["crashes"] == 1
        assert snap["workers"][0]["restarts"] == 1
        assert snap["restarts_used"] == 1
        # The replacement slot takes work again.
        assert pool.result(pool.submit(_double, 2)) == 4


def test_simulated_hang_is_booked_as_hang():
    with SupervisedWorkerPool.inline(1, restart_budget=2) as pool:
        d = pool.submit(_raise_hang)
        with pytest.raises(WorkerHangError):
            pool.result(d)
        assert pool.snapshot()["workers"][0]["hangs"] == 1


def test_restart_budget_exhaustion_retires_the_pool():
    with SupervisedWorkerPool.inline(1, restart_budget=1) as pool:
        for _ in range(2):
            with pytest.raises(WorkerCrashError):
                pool.result(pool.submit(_raise_crash))
        assert pool.capacity == 0
        with pytest.raises(RestartBudgetError):
            pool.submit(_double, 1)


def test_real_worker_kill_is_contained_and_recovered():
    """An ``os._exit`` in a worker process must not take the pool down."""
    with SupervisedWorkerPool(2, restart_budget=2) as pool:
        victim = pool.submit(_die, 3)
        survivor = pool.submit(_double, 5)
        with pytest.raises(WorkerCrashError):
            pool.result(victim, timeout=30.0)
        # The other slot's in-flight work is untouched by the crash...
        assert pool.result(survivor, timeout=30.0) == 10
        # ...and the replaced slot serves again without a pool restart.
        assert pool.result(pool.submit(_double, 7), timeout=30.0) == 14
        assert pool.snapshot()["restarts_used"] == 1


def test_real_hang_kills_and_replaces_the_worker():
    with SupervisedWorkerPool(1, restart_budget=2) as pool:
        d = pool.submit(_nap, 30.0)
        start = time.perf_counter()
        with pytest.raises(WorkerHangError):
            pool.result(d, timeout=0.3)
        assert time.perf_counter() - start < 10.0  # killed, not waited out
        assert pool.snapshot()["workers"][0]["hangs"] == 1
        assert pool.result(pool.submit(_double, 3), timeout=30.0) == 6


def test_forget_releases_the_slot():
    with SupervisedWorkerPool.inline(1) as pool:
        d = pool.submit(_double, 1)
        pool.forget(d)
        assert d.slot.inflight == 0


def test_wait_helpers():
    with SupervisedWorkerPool.inline(1) as pool:
        d = pool.submit(_double, 4)
        done, pending = wait_any([d.future], timeout=1.0)
        assert d.future in done and not pending
        assert sleep_until_done(d.future, timeout=1.0)


def test_inline_executor_wraps_results_and_exceptions():
    ex = InlineExecutor()
    assert ex.submit(_double, 3).result() == 6
    assert isinstance(
        ex.submit(_raise_value_error).exception(), ValueError
    )


def test_constructor_validation():
    with pytest.raises(ValueError):
        SupervisedWorkerPool(0)
    with pytest.raises(ValueError):
        SupervisedWorkerPool.inline(1, restart_budget=-1)
