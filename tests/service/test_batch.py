"""Batch executor: dedup, donor ordering, backpressure, deadlines, order."""

from __future__ import annotations

import pytest

from repro.minlp.bnb import BnBOptions
from repro.service import (
    AllocationService,
    BatchExecutor,
    ServiceOverloadError,
)

from tests.service.conftest import CURVES, make_request


def _executor(**kwargs) -> BatchExecutor:
    return BatchExecutor(AllocationService(), **kwargs)


def test_batch_preserves_input_order_and_dedups(request64):
    executor = _executor()
    batch = [request64, make_request(96), request64, request64]
    responses = executor.run(batch)
    assert [r.fingerprint for r in responses] == [
        r.fingerprint() for r in batch
    ]
    # One solve per distinct fingerprint; duplicates answered from cache.
    assert [r.cached for r in responses] == [False, False, True, True]
    metrics = executor.service.metrics
    assert metrics.batch_requests == 4
    assert metrics.batch_deduped == 2
    assert metrics.misses == 2 and metrics.cache_hits == 2


def test_duplicate_answers_are_bit_identical(request64):
    responses = _executor().run([request64, request64])
    assert responses[0].allocation == responses[1].allocation
    assert responses[0].objective == responses[1].objective


def test_donor_first_ordering_warms_the_family():
    executor = _executor()
    responses = executor.run([make_request(n) for n in (96, 64, 128)])
    # The smallest budget in the family is solved first as the donor; every
    # other member fans out warm-started from it.
    by_nodes = {64: responses[1], 96: responses[0], 128: responses[2]}
    assert not by_nodes[64].warm_started
    assert by_nodes[96].warm_started and by_nodes[128].warm_started
    assert executor.service.metrics.warm_solves == 2


def test_backpressure_refuses_oversized_batches(request64):
    executor = _executor(max_pending=2)
    with pytest.raises(ServiceOverloadError) as err:
        executor.run([request64] * 3)
    assert err.value.pending == 3 and err.value.capacity == 2
    assert executor.service.metrics.overloads == 1


def test_deadline_miss_is_an_error_envelope_not_a_crash():
    # An enormous instance with a sub-microsecond budget cannot finish; its
    # slot carries a typed error while the rest of the batch succeeds.
    executor = _executor(deadline=1e-9)
    doomed = make_request(4096, options=BnBOptions(time_limit=1e-9))
    responses = executor.run([doomed])
    assert not responses[0].ok
    assert responses[0].status == "time_limit"
    assert executor.service.metrics.timeouts >= 1


def test_failed_duplicates_reuse_the_error_envelope():
    executor = _executor(deadline=1e-9)
    doomed = make_request(4096, options=BnBOptions(time_limit=1e-9))
    responses = executor.run([doomed, doomed])
    assert [r.ok for r in responses] == [False, False]
    # The duplicate shares the first envelope instead of re-solving.
    assert responses[0].fingerprint == responses[1].fingerprint
    assert executor.service.metrics.cold_solves + executor.service.metrics.warm_solves <= 1


def test_precached_requests_hit_without_resolving(request64):
    service = AllocationService()
    service.submit(request64)
    executor = BatchExecutor(service)
    responses = executor.run([request64, request64])
    assert all(r.cached for r in responses)
    assert service.metrics.cold_solves == 1  # only the priming solve


def test_process_pool_fan_out_matches_serial(request64):
    # Two distinct families, so neither is the other's donor and both truly
    # fan out to worker processes in the pooled run.
    other = {name: dict(p, a=p["a"] * 2.0) for name, p in CURVES.items()}
    batch = [request64, make_request(96, curves=other)]
    serial = _executor().run(batch)
    pooled = BatchExecutor(AllocationService(), max_workers=2).run(batch)
    for a, b in zip(serial, pooled):
        assert a.allocation == b.allocation
        assert a.objective == b.objective  # fingerprint-seeded: bit-identical


def test_constructor_validation():
    service = AllocationService()
    with pytest.raises(ValueError):
        BatchExecutor(service, max_workers=-1)
    with pytest.raises(ValueError):
        BatchExecutor(service, deadline=0.0)
    with pytest.raises(ValueError):
        BatchExecutor(service, max_pending=0)
