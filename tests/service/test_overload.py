"""Admission backpressure: typed shed, retry-after hints, shed accounting."""

from __future__ import annotations

import pytest

from repro.obs.metrics import REGISTRY
from repro.service import (
    AllocationService,
    BatchExecutor,
    ServiceOverloadError,
)
from tests.service.conftest import make_request


def oversized_batch(n: int) -> list:
    return [make_request(24 + i) for i in range(n)]


def test_oversized_batch_is_refused_with_a_typed_error():
    executor = BatchExecutor(AllocationService(), max_pending=2)
    with pytest.raises(ServiceOverloadError) as err:
        executor.run(oversized_batch(5))
    assert err.value.pending == 5
    assert err.value.capacity == 2


def test_retry_after_hint_scales_with_the_excess():
    service = AllocationService()
    executor = BatchExecutor(service, max_pending=2, deadline=0.5)
    with pytest.raises(ServiceOverloadError) as err:
        executor.run(oversized_batch(5))
    # No latency history yet: the hint falls back to excess x deadline.
    assert err.value.retry_after == pytest.approx(3 * 0.5)
    assert "retry after" in str(err.value)
    # With observed traffic the hint tracks the measured mean latency.
    service.metrics.request_latency.observe(0.2)
    with pytest.raises(ServiceOverloadError) as err:
        executor.run(oversized_batch(4))
    assert err.value.retry_after == pytest.approx(2 * 0.2)


def test_retry_after_defaults_conservatively_without_any_signal():
    executor = BatchExecutor(AllocationService(), max_pending=3)
    with pytest.raises(ServiceOverloadError) as err:
        executor.run(oversized_batch(4))
    assert err.value.retry_after > 0.0


def test_overload_counter_matches_shed_events():
    service = AllocationService()
    executor = BatchExecutor(service, max_pending=2)
    before = REGISTRY.counter("service_overloads_total").value()
    for _ in range(3):
        with pytest.raises(ServiceOverloadError):
            executor.run(oversized_batch(4))
    assert service.metrics.overloads == 3
    after = REGISTRY.counter("service_overloads_total").value()
    assert after - before == 3
    # Admitted batches do not touch the overload ledger.
    executor.run([make_request(24)])
    assert service.metrics.overloads == 3


def test_shed_batches_never_run_any_solve():
    service = AllocationService()
    executor = BatchExecutor(service, max_pending=1)
    with pytest.raises(ServiceOverloadError):
        executor.run(oversized_batch(3))
    assert service.metrics.cold_solves == 0
    assert len(service.cache) == 0
