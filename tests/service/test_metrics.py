"""Tests for ServiceMetrics: reset, snapshot isolation, registry mirroring."""

import pytest

from repro.obs.metrics import REGISTRY
from repro.service.metrics import LatencyHistogram, ServiceMetrics


def _populate(m: ServiceMetrics) -> None:
    m.record_hit(0.001)
    m.record_solve(0.2, warm=False, iterations=10, ok=True)
    m.record_solve(0.05, warm=True, iterations=2, ok=True)
    m.record_solve(0.5, warm=False, iterations=0, ok=False)
    m.record_timeout()
    m.record_overload()
    m.record_batch(5, deduped=2)


def test_reset_zeroes_every_counter_and_histogram():
    m = ServiceMetrics()
    _populate(m)
    assert m.requests and m.batch_requests and m.timeouts
    m.reset()
    assert m.requests == 0
    assert m.cache_hits == 0
    assert m.cold_solves == 0 and m.warm_solves == 0
    assert m.solve_errors == 0
    assert m.timeouts == 0 and m.overloads == 0
    assert m.batch_requests == 0 and m.batch_deduped == 0
    assert m.cold_iterations == 0 and m.warm_iterations == 0
    assert m.request_latency.total == 0
    assert m.request_latency.sum == 0.0
    assert all(c == 0 for c in m.request_latency.counts)
    # The instance is fully reusable after reset.
    m.record_hit(0.002)
    assert m.requests == 1 and m.hit_rate == 1.0


def test_latency_histogram_reset_keeps_bucket_layout():
    h = LatencyHistogram()
    h.observe(0.3)
    h.observe(100.0)  # overflow bucket
    h.reset()
    assert h.total == 0 and h.sum == 0.0
    assert len(h.counts) == len(h.buckets) + 1
    h.observe(0.3)
    assert h.total == 1


def test_snapshot_is_isolated_from_later_mutation():
    m = ServiceMetrics()
    _populate(m)
    snap = m.snapshot()
    # Mutating the snapshot (or its nested dicts) must not touch the live
    # metrics, and later recording must not rewrite an older snapshot.
    snap["requests"] = 999
    snap["latency"]["buckets"]["0.25"] = 12345
    before = dict(snap["latency"])
    m.record_hit(0.2)
    assert m.requests == 5
    assert m.snapshot()["requests"] == 5
    assert snap["latency"] == before


def test_snapshot_values():
    m = ServiceMetrics()
    _populate(m)
    snap = m.snapshot()
    assert snap["requests"] == 4
    assert snap["cache_hits"] == 1
    assert snap["cache_misses"] == 2  # the failed solve is not a miss pair
    assert snap["solve_errors"] == 1
    assert snap["timeouts"] == 1 and snap["overloads"] == 1
    assert snap["batch_requests"] == 5 and snap["batch_deduped"] == 2
    assert snap["warm_start_speedup"] == pytest.approx(5.0)


def test_registry_mirror_tracks_outcomes():
    counter = REGISTRY.counter("service_requests_total")
    hist = REGISTRY.histogram("service_request_seconds")
    before = {
        outcome: counter.value(outcome=outcome)
        for outcome in ("hit", "cold", "warm", "error")
    }
    observations = hist.count()
    m = ServiceMetrics()
    _populate(m)
    assert counter.value(outcome="hit") == before["hit"] + 1
    assert counter.value(outcome="cold") == before["cold"] + 1
    assert counter.value(outcome="warm") == before["warm"] + 1
    assert counter.value(outcome="error") == before["error"] + 1
    assert hist.count() == observations + 4
    # reset() is per-instance; the process-wide mirror keeps accumulating.
    m.reset()
    assert counter.value(outcome="hit") == before["hit"] + 1


def test_registry_mirror_tracks_timeouts_overloads_batches():
    names = (
        "service_timeouts_total",
        "service_overloads_total",
        "service_batch_requests_total",
        "service_batch_deduped_total",
    )
    before = {n: REGISTRY.counter(n).value() for n in names}
    m = ServiceMetrics()
    _populate(m)
    assert REGISTRY.counter("service_timeouts_total").value() == before[
        "service_timeouts_total"
    ] + 1
    assert REGISTRY.counter("service_overloads_total").value() == before[
        "service_overloads_total"
    ] + 1
    assert REGISTRY.counter("service_batch_requests_total").value() == before[
        "service_batch_requests_total"
    ] + 5
    assert REGISTRY.counter("service_batch_deduped_total").value() == before[
        "service_batch_deduped_total"
    ] + 2
