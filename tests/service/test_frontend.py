"""The async serving tier: routing, coalescing, admission, transports."""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.service import (
    AdmissionPolicy,
    AsyncServingTier,
    ClassThresholds,
    TierConfig,
    run_requests,
    serve_stdio,
)

from tests.service.conftest import make_request

#: A second curve family, so routing tests have two distinct family keys.
OTHER_CURVES = {
    "frag": dict(a=2000.0, b=0.4, c=1.1, d=1.0),
    "esp": dict(a=500.0, b=0.1, c=1.0, d=0.5),
}


def _tier(**overrides) -> AsyncServingTier:
    overrides.setdefault("worker_mode", "inline")
    overrides.setdefault("shards", 4)
    return AsyncServingTier(TierConfig(**overrides))


# -- configuration ------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        TierConfig(shards=0)
    with pytest.raises(ValueError):
        TierConfig(worker_mode="quantum")


def test_for_host_matches_the_core_budget():
    # One core: out-of-process solving buys nothing and costs cut-pool
    # reuse, so the derived mode is in-process threads.
    assert TierConfig.for_host(1).worker_mode == "thread"
    assert TierConfig.for_host(8).worker_mode == "process"
    # Explicit overrides always win over the derived fields.
    assert TierConfig.for_host(8, worker_mode="inline").worker_mode == "inline"
    assert TierConfig.for_host().worker_mode in ("thread", "process")


# -- routing ------------------------------------------------------------------


def test_all_budgets_of_a_family_share_a_shard():
    tier = _tier()
    owners = {tier.route(make_request(b)) for b in (48, 64, 72, 96)}
    assert len(owners) == 1  # family key excludes the budget


def test_distinct_families_can_land_apart():
    tier = _tier(shards=8)
    a = tier.route(make_request(64))
    b = tier.route(make_request(64, curves=OTHER_CURVES))
    # Not guaranteed for any 2 keys on any ring, but pinned here for this
    # ring so a routing regression (everything on shard 0) gets caught.
    assert a != b


# -- the request path ---------------------------------------------------------


def test_serves_and_caches_across_repeats(request64):
    tier = _tier()
    first, second = run_requests(tier, [request64, request64])
    assert first.allocation == second.allocation
    snap = tier.snapshot()
    assert snap["served"] == 2
    assert snap["cache_hits"] + snap["cold_solves"] == 2
    assert snap["cold_solves"] == 1


def test_concurrent_identical_requests_coalesce_to_one_solve(request64):
    """The tentpole invariant end-to-end: N identical in-flight -> 1 solve."""
    tier = AsyncServingTier(
        TierConfig(shards=2, worker_mode="thread")
    )
    n = 8

    async def main():
        async with tier:
            return await asyncio.gather(
                *(tier.submit(request64) for _ in range(n))
            )

    responses = asyncio.run(main())
    assert all(r.allocation == responses[0].allocation for r in responses)
    snap = tier.snapshot()
    assert snap["cold_solves"] == 1
    assert snap["coalesce"]["leaders"] == 1
    assert snap["coalesce"]["riders"] == n - 1


def test_coalescing_can_be_disabled(request64):
    tier = AsyncServingTier(
        TierConfig(shards=1, worker_mode="thread", coalesce=False)
    )

    async def main():
        async with tier:
            return await asyncio.gather(
                *(tier.submit(request64) for _ in range(4))
            )

    asyncio.run(main())
    snap = tier.snapshot()
    assert snap["coalesce"]["riders"] == 0
    assert snap["cold_solves"] >= 1


def test_degraded_requests_answer_from_the_greedy_rung(request64):
    # degrade_at=0 puts every arrival in the degrade band: the answer comes
    # from the polynomial-time greedy with explicit provenance, no solve.
    tier = _tier(
        admission=AdmissionPolicy(
            max_pending=10,
            thresholds={"batch": ClassThresholds(degrade_at=0.0, shed_at=1.0)},
        )
    )
    (response,) = run_requests(tier, [request64])
    assert response.source == "greedy"
    snap = tier.snapshot()
    assert snap["cold_solves"] == 0
    assert snap["degraded_greedy"] == 1
    assert snap["admission"]["degraded"] == 1


def test_degraded_requests_prefer_the_stale_cache(request64):
    # Prime the cache with an exact answer, expire it, then degrade: the
    # stale rung must serve the (bit-identical) old answer, not greedy.
    tier = _tier(ttl=1e-9)
    (exact,) = run_requests(tier, [request64])
    tier.admission.policy = AdmissionPolicy(
        max_pending=10,
        thresholds={"batch": ClassThresholds(degrade_at=0.0, shed_at=1.0)},
    )
    (degraded,) = run_requests(tier, [request64])
    assert degraded.source == "stale"
    assert degraded.allocation == exact.allocation
    assert tier.snapshot()["degraded_stale"] == 1


def test_shed_requests_get_typed_overload(request64):
    tier = _tier(
        admission=AdmissionPolicy(
            max_pending=10,
            thresholds={"batch": ClassThresholds(degrade_at=0.0, shed_at=0.0)},
        )
    )
    (response,) = run_requests(tier, [request64])
    assert not response.ok
    assert response.status == "overload"
    assert tier.snapshot()["admission"]["shed"] == 1


def test_cache_hits_answer_exactly_in_the_degrade_band(request64):
    # A live cache hit costs microseconds; degrading it to greedy would be
    # pure waste, so hits short-circuit the degrade verdict.
    tier = _tier()
    run_requests(tier, [request64])  # prime
    tier.admission.policy = AdmissionPolicy(
        max_pending=10,
        thresholds={"batch": ClassThresholds(degrade_at=0.0, shed_at=1.0)},
    )
    (hit,) = run_requests(tier, [request64])
    assert hit.cached and hit.ok
    assert tier.snapshot()["degraded_greedy"] == 0


# -- process workers ----------------------------------------------------------


def test_process_mode_solves_and_chains_warm_starts():
    """Out-of-process shards: answers match inline, warm starts still chain."""
    reference = run_requests(
        _tier(shards=1), [make_request(b) for b in (48, 64, 72)]
    )
    tier = AsyncServingTier(TierConfig(shards=1, worker_mode="process"))
    responses = run_requests(tier, [make_request(b) for b in (48, 64, 72)])
    assert all(r.ok for r in responses)
    # The child process solves without the parent's shared cut pool, so it
    # may land on a different optimal tie — objectives must still agree.
    for got, want in zip(responses, reference):
        assert got.objective == pytest.approx(want.objective, rel=1e-9)
    snap = tier.snapshot()
    # The dispatch lock makes each solve see its admitted predecessors, so
    # the family's later budgets warm-start off the earlier ones.
    assert snap["warm_solves"] >= 1


def test_entering_the_tier_preforks_process_workers():
    """``async with tier`` must fork every pool worker up front.

    A lazily-forked worker inherits whatever locks other threads hold at
    first-submit time — in particular a transport thread parked in a
    blocking ``sys.stdin.readline`` holds the buffered-reader lock, and
    the child then deadlocks closing stdin in its multiprocessing
    bootstrap.  Forking before any transport thread exists is the guard.
    """
    tier = AsyncServingTier(TierConfig(shards=2, worker_mode="process"))

    async def main():
        async with tier:
            return [len(s.process._processes or ()) for s in tier.shards.values()]

    workers_per_shard = asyncio.run(main())
    assert workers_per_shard and all(n >= 1 for n in workers_per_shard)


# -- the JSONL transport ------------------------------------------------------


def _serve(lines: list[str], **config) -> tuple[int, list[dict]]:
    config.setdefault("worker_mode", "thread")
    tier = AsyncServingTier(TierConfig(**config))
    out = io.StringIO()
    served = serve_stdio(tier, io.StringIO("\n".join(lines) + "\n"), out)
    return served, [json.loads(line) for line in out.getvalue().splitlines()]


def test_stdio_serves_and_echoes_ids(request64):
    payload = request64.to_dict()
    served, replies = _serve(
        [
            json.dumps({**payload, "id": "a"}),
            json.dumps({**payload, "id": "b"}),
        ]
    )
    assert served == 2
    # Responses may complete out of order; ids make them matchable.
    by_id = {r["id"]: r for r in replies}
    assert set(by_id) == {"a", "b"}
    assert by_id["a"]["allocation"] == by_id["b"]["allocation"]
    assert all("shard" in r for r in replies)


def test_stdio_control_lines(request64):
    line = json.dumps(request64.to_dict())
    # Inline workers make the sequence deterministic: the request's task
    # finishes before the loop reads the metrics line.
    served, replies = _serve(
        [line, '{"cmd": "metrics"}', '{"cmd": "quit"}', line],
        worker_mode="inline",
    )
    assert served == 1  # the quit stopped the loop before the second request
    metrics = next(r["metrics"] for r in replies if "metrics" in r)
    assert metrics["shards"] == 4
    assert metrics["served"] == 1


def test_stdio_rejects_malformed_lines():
    served, replies = _serve(["not json", '["a", "list"]', '{"cmd": "nope"}'])
    assert served == 0
    assert all("error" in r for r in replies)


def test_stdio_priority_rides_the_payload(request64):
    payload = {**request64.to_dict(), "priority": "background"}
    served, replies = _serve(
        [json.dumps(payload)],
        admission=AdmissionPolicy(
            max_pending=10,
            thresholds={
                "background": ClassThresholds(degrade_at=0.0, shed_at=1.0),
                "batch": ClassThresholds(degrade_at=0.9, shed_at=1.0),
            },
        ),
    )
    assert served == 1
    assert replies[0]["source"] == "greedy"  # degraded by its own class
