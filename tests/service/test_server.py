"""The JSONL serve loop: requests, control lines, and malformed input."""

from __future__ import annotations

import io
import json

from repro.service import AllocationService, serve_loop

from tests.service.conftest import make_request


def _run(lines: list[str], **kwargs) -> tuple[int, list[dict]]:
    service = kwargs.pop("service", None) or AllocationService()
    out = io.StringIO()
    served = serve_loop(
        service, io.StringIO("\n".join(lines) + "\n"), out, **kwargs
    )
    return served, [json.loads(line) for line in out.getvalue().splitlines()]


def test_serves_requests_and_caches(request64):
    line = json.dumps(request64.to_dict())
    served, replies = _run([line, line])
    assert served == 2
    assert replies[0]["cached"] is False and replies[1]["cached"] is True
    assert replies[0]["allocation"] == replies[1]["allocation"]


def test_metrics_command():
    served, replies = _run(
        [json.dumps(make_request(64).to_dict()), '{"cmd": "metrics"}']
    )
    assert served == 1  # control lines are not requests
    assert replies[1]["metrics"]["requests"] == 1


def test_quit_stops_the_loop(request64):
    line = json.dumps(request64.to_dict())
    served, replies = _run([line, '{"cmd": "quit"}', line])
    assert served == 1
    assert len(replies) == 1


def test_malformed_lines_do_not_kill_the_loop(request64):
    served, replies = _run(
        [
            "not json at all",
            "[1, 2, 3]",
            '{"cmd": "selfdestruct"}',
            '{"components": {}, "total_nodes": 4}',
            json.dumps(request64.to_dict()),
        ]
    )
    assert served == 2  # the bad request and the good one
    assert "bad JSON" in replies[0]["error"]
    assert "JSON object" in replies[1]["error"]
    assert "unknown command" in replies[2]["error"]
    assert "components" in replies[3]["error"]
    assert replies[4]["status"] == "optimal"


def test_blank_lines_are_skipped(request64):
    served, replies = _run(["", "   ", json.dumps(request64.to_dict())])
    assert served == 1 and len(replies) == 1
