"""Single-flight coalescing: one solve per in-flight key, shared outcomes."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import SingleFlight


def test_n_identical_in_flight_run_once():
    """The core invariant: N concurrent identical requests -> one execution."""
    flight = SingleFlight()
    calls = 0
    release = asyncio.Event()

    async def solve():
        nonlocal calls
        calls += 1
        await release.wait()  # hold the flight open until all N have joined
        return {"answer": 42}

    async def main():
        tasks = [
            asyncio.create_task(flight.run("fp", solve)) for _ in range(10)
        ]
        await asyncio.sleep(0)  # let every task enter run()
        release.set()
        return await asyncio.gather(*tasks)

    results = asyncio.run(main())
    assert calls == 1
    assert all(r == {"answer": 42} for r in results)
    assert flight.stats.leaders == 1
    assert flight.stats.riders == 9
    assert flight.stats.coalesce_rate == pytest.approx(0.9)


def test_distinct_keys_do_not_coalesce():
    flight = SingleFlight()
    calls = []

    async def solve(key):
        calls.append(key)
        await asyncio.sleep(0)
        return key

    async def main():
        return await asyncio.gather(
            flight.run("a", lambda: solve("a")),
            flight.run("b", lambda: solve("b")),
        )

    assert asyncio.run(main()) == ["a", "b"]
    assert sorted(calls) == ["a", "b"]
    assert flight.stats.riders == 0


def test_sequential_calls_each_run():
    """Coalescing is for in-flight duplicates; completed answers are the
    cache's job, so a caller arriving after completion runs fresh."""
    flight = SingleFlight()
    calls = 0

    async def solve():
        nonlocal calls
        calls += 1
        return calls

    async def main():
        first = await flight.run("fp", solve)
        second = await flight.run("fp", solve)
        return first, second

    assert asyncio.run(main()) == (1, 2)
    assert flight.stats.leaders == 2


def test_riders_share_the_leaders_exception():
    flight = SingleFlight()
    calls = 0
    release = asyncio.Event()

    async def solve():
        nonlocal calls
        calls += 1
        await release.wait()
        raise RuntimeError("solver blew up")

    async def main():
        tasks = [
            asyncio.create_task(flight.run("fp", solve)) for _ in range(4)
        ]
        await asyncio.sleep(0)
        release.set()
        return await asyncio.gather(*tasks, return_exceptions=True)

    results = asyncio.run(main())
    assert calls == 1
    assert all(isinstance(r, RuntimeError) for r in results)
    # The failed flight is cleared: the next arrival starts fresh instead of
    # inheriting a stale failure.
    assert not flight.in_flight("fp")


def test_cancelled_leader_hands_off_to_a_rider():
    """Cancelling the leader must not strand riders with CancelledError."""
    flight = SingleFlight()
    calls = 0
    release = asyncio.Event()

    async def solve():
        nonlocal calls
        calls += 1
        if calls == 1:
            await asyncio.Event().wait()  # first leader hangs until cancelled
        await release.wait()
        return "handed-off"

    async def main():
        leader = asyncio.create_task(flight.run("fp", solve))
        riders = [
            asyncio.create_task(flight.run("fp", solve)) for _ in range(3)
        ]
        await asyncio.sleep(0)
        leader.cancel()
        # Let the cancellation land and the riders re-enter: the first one
        # re-leads (and suspends on `release`), the rest join its flight.
        for _ in range(3):
            await asyncio.sleep(0)
        release.set()
        results = await asyncio.gather(
            leader, *riders, return_exceptions=True
        )
        return results

    leader_result, *rider_results = asyncio.run(main())
    # The canceller sees its own cancellation...
    assert isinstance(leader_result, asyncio.CancelledError)
    # ...while one rider re-led the flight and the rest rode it.
    assert calls == 2
    assert all(r == "handed-off" for r in rider_results)
