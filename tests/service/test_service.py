"""AllocationService behavior: hits, donors, determinism, timeouts."""

from __future__ import annotations

import pytest

from repro.minlp.bnb import BnBOptions
from repro.service import (
    AllocationService,
    ServiceTimeoutError,
    solve_request,
)

from tests.service.conftest import make_request


def test_hit_is_bit_identical_to_the_fresh_solve(request64):
    service = AllocationService()
    fresh = service.submit(request64)
    hit = service.submit(request64)
    assert not fresh.cached and hit.cached
    assert hit.allocation == fresh.allocation
    assert hit.objective == fresh.objective  # exact, not approx
    assert hit.fingerprint == fresh.fingerprint
    assert service.metrics.cache_hits == 1


def test_solve_is_deterministic_across_services(request64):
    # The solve RNG is seeded from the fingerprint, so any process answers
    # the same request identically — the property that makes a shared cache
    # indistinguishable from solving.
    a = solve_request(request64)
    b = solve_request(request64)
    assert a.allocation == b.allocation
    assert a.objective == b.objective
    assert a.iterations == b.iterations


def test_neighbor_budget_solves_warm(request64):
    service = AllocationService()
    service.submit(request64)
    neighbor = service.submit(make_request(72))
    assert not neighbor.cached
    assert neighbor.warm_started
    assert neighbor.donor == request64.fingerprint()
    assert service.metrics.warm_solves == 1
    # The donor's head start must show up as measurably less solver work.
    cold = solve_request(make_request(72))
    assert neighbor.iterations < cold.iterations
    assert service.metrics.warm_start_speedup > 1.0


def test_donor_is_nearest_budget():
    service = AllocationService()
    for total in (16, 64, 256):
        service.submit(make_request(total))
    response = service.submit(make_request(72))
    assert response.donor == make_request(64).fingerprint()


def test_warm_start_can_be_disabled(request64):
    service = AllocationService(warm_start=False)
    service.submit(request64)
    neighbor = service.submit(make_request(72))
    assert not neighbor.warm_started and neighbor.donor is None


def test_donor_pool_prunes_evicted_entries(request64):
    service = AllocationService(cache_capacity=1)
    service.submit(request64)
    service.submit(make_request(256))  # evicts the 64-node entry
    response = service.submit(make_request(72))
    # The 64-node donor is gone from cache; the 256-node one must be used.
    assert response.donor == make_request(256).fingerprint()
    family = service._families[request64.family_key()]
    assert request64.fingerprint() not in family


def test_deadline_timeout_is_typed(request64):
    service = AllocationService()
    tiny = make_request(
        4096,
        options=BnBOptions(node_limit=1, time_limit=1e-9),
    )
    with pytest.raises(ServiceTimeoutError) as err:
        service.submit(tiny, deadline=1e-9)
    assert err.value.fingerprint == tiny.fingerprint()
    assert service.metrics.timeouts == 1
    # A timed-out solve is never admitted to the cache.
    assert tiny.fingerprint() not in service.cache


def test_metrics_snapshot_shape(request64):
    service = AllocationService()
    service.submit(request64)
    service.submit(request64)
    snap = service.metrics.snapshot()
    assert snap["requests"] == 2
    assert snap["cache_hits"] == 1
    assert snap["hit_rate"] == 0.5
    assert snap["latency"]["count"] == 2
    assert "warm_start_speedup" in snap
    text = service.metrics.render()
    assert "hit rate" in text
