"""The degradation ladder: exact -> stale -> greedy -> typed rejection."""

from __future__ import annotations

import pytest

from repro.minlp.solution import Status
from repro.service import (
    AllocationService,
    ResiliencePolicy,
    RetryPolicy,
    ServiceRejectedError,
    WorkerCrashError,
    greedy_outcome,
)
from repro.service.breaker import OPEN
from repro.service.service import BreakerPolicy
from repro.service.solver import validate_outcome
from tests.service.conftest import make_request


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_service(clock=None, *, ttl=None, **policy_kwargs) -> AllocationService:
    policy_kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
    )
    return AllocationService(
        ttl=ttl,
        clock=clock or FakeClock(),
        resilience=ResiliencePolicy(**policy_kwargs),
        sleeper=lambda _s: None,
    )


def break_solver(service: AllocationService) -> list:
    """Make every exact solve die as a worker crash; returns the call log."""
    calls = []

    def _dead(request, *, x0=None, deadline=None, attempt=0):
        calls.append(attempt)
        raise WorkerCrashError(worker_id=0, fingerprint=request.fingerprint())

    service._solve = _dead
    return calls


def test_retry_recovers_from_a_transient_crash():
    service = make_service()
    real = service._solve
    state = {"calls": 0}

    def _flaky(request, *, x0=None, deadline=None, attempt=0):
        state["calls"] += 1
        if state["calls"] == 1:
            raise WorkerCrashError(worker_id=0)
        return real(request, x0=x0, deadline=deadline, attempt=attempt)

    service._solve = _flaky
    response = service.submit(make_request(48))
    assert response.ok and response.source == "exact"
    assert state["calls"] == 2
    assert service.metrics.retries == 1
    assert service.metrics.worker_crashes == 1


def test_stale_rung_serves_expired_entries_marked():
    clock = FakeClock()
    service = make_service(clock, ttl=10.0)
    exact = service.submit(make_request(64))
    assert exact.source == "exact"
    clock.advance(25.0)  # entry is now 25s old, 15s past its TTL
    break_solver(service)
    response = service.submit(make_request(64))
    assert response.ok
    assert response.source == "stale"
    assert response.cached
    assert response.staleness == pytest.approx(25.0)
    assert response.allocation == exact.allocation
    assert response.degraded
    assert service.metrics.degraded_stale == 1


def test_max_stale_bounds_the_stale_rung():
    clock = FakeClock()
    service = make_service(clock, ttl=10.0, max_stale=20.0)
    service.submit(make_request(64))
    clock.advance(25.0)  # older than max_stale: the rung must pass
    break_solver(service)
    response = service.submit(make_request(64))
    assert response.source == "greedy"


def test_greedy_rung_answers_when_nothing_is_cached():
    service = make_service()
    break_solver(service)
    request = make_request(64)
    response = service.submit(request)
    assert response.ok
    assert response.source == "greedy"
    assert response.status == Status.FEASIBLE.value
    assert sum(response.allocation.values()) <= 64
    assert all(n >= 1 for n in response.allocation.values())
    assert service.metrics.degraded_greedy == 1
    # Greedy answers must never shadow an exact answer in the cache.
    assert request.fingerprint() not in service.cache


def test_ladder_bottom_is_a_typed_rejection():
    service = make_service(allow_stale=False, allow_greedy=False)
    calls = break_solver(service)
    with pytest.raises(ServiceRejectedError) as err:
        service.submit(make_request(64))
    assert err.value.fingerprint == make_request(64).fingerprint()
    assert len(calls) == 2  # both attempts ran before rejecting
    assert service.metrics.rejections == 1


def test_without_a_policy_crashes_propagate():
    service = AllocationService()
    break_solver(service)
    with pytest.raises(WorkerCrashError):
        service.submit(make_request(64))


def test_time_limit_is_never_retried():
    service = make_service(retry=RetryPolicy(max_attempts=5, base_delay=0.0))
    calls = []
    real = service._solve

    def _slow(request, *, x0=None, deadline=None, attempt=0):
        calls.append(attempt)
        outcome = real(request, x0=x0, deadline=deadline, attempt=attempt)
        return type(outcome)(
            **{**outcome.to_dict(), "status": Status.TIME_LIMIT.value}
        )

    service._solve = _slow
    response = service.submit(make_request(64))
    assert len(calls) == 1  # deterministic failure: no identical re-run
    assert response.source == "greedy"
    assert service.metrics.timeouts == 1


def test_corrupt_results_are_retried_not_served():
    from repro.faults.chaos import corrupt_outcome

    service = make_service()
    real = service._solve
    state = {"calls": 0}

    def _corrupting(request, *, x0=None, deadline=None, attempt=0):
        state["calls"] += 1
        outcome = real(request, x0=x0, deadline=deadline, attempt=attempt)
        return corrupt_outcome(outcome) if state["calls"] == 1 else outcome

    service._solve = _corrupting
    response = service.submit(make_request(64))
    assert response.ok and response.source == "exact"
    assert state["calls"] == 2
    assert service.metrics.corruptions == 1
    assert validate_outcome(make_request(64), service.cache.peek(
        make_request(64).fingerprint()
    )) is None


def test_breaker_opens_and_short_circuits_the_family():
    clock = FakeClock()
    service = make_service(
        clock,
        breaker=BreakerPolicy(failure_threshold=1, reset_timeout=60.0),
    )
    calls = break_solver(service)
    first = service.submit(make_request(64))
    assert first.source == "greedy"
    assert service.breaker.state(make_request(64).family_key()) == OPEN
    before = len(calls)
    # Same family, different budget: blocked before any solve attempt.
    second = service.submit(make_request(48))
    assert second.source == "greedy"
    assert len(calls) == before
    assert service.metrics.breaker_blocks == 1


def test_breaker_closes_after_a_successful_probe():
    clock = FakeClock()
    service = make_service(
        clock,
        breaker=BreakerPolicy(failure_threshold=1, reset_timeout=30.0),
    )
    real = service._solve
    break_solver(service)
    service.submit(make_request(64))  # opens the breaker
    service._solve = real  # the corner of the solver "recovers"
    clock.advance(30.0)
    probe = service.submit(make_request(48))  # half-open probe passes through
    assert probe.source == "exact"
    assert service.breaker.state(make_request(48).family_key()) == "closed"


def test_greedy_outcome_respects_bounds_and_validates():
    request = make_request(64)
    outcome = greedy_outcome(request)
    assert validate_outcome(request, outcome) is None
    assert outcome.message.startswith("greedy fallback")
    bounded = make_request(32)
    assert sum(greedy_outcome(bounded).allocation.values()) <= 32


def test_greedy_outcome_is_close_to_exact_for_min_max():
    """The greedy rung is a real answer: near the exact min-max optimum."""
    request = make_request(64)
    exact = AllocationService().submit(request)
    greedy = greedy_outcome(request)
    assert greedy.objective <= exact.objective * 1.25
