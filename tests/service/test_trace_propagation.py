"""End-to-end trace propagation through the async tier (the acceptance bar).

Concurrent requests enter the tier, cross the admission gate, the
single-flight table, a shard queue, and — in process mode — a genuine
process boundary into the worker that solves; every response must come
back stamped with a ``trace_id`` that resolves, in the parent tracer, to
ONE well-nested tree containing the admission, shard, and in-worker solve
spans.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.trace import get_tracer
from repro.service import AsyncServingTier, TierConfig

from tests.service.conftest import make_request


@pytest.fixture
def tracer():
    t = get_tracer()
    t.reset()
    t.enable()
    try:
        yield t
    finally:
        t.disable()
        t.reset()


def _submit_all(tier, requests, priority="interactive"):
    async def main():
        async with tier:
            return await asyncio.gather(
                *(tier.submit(r, priority=priority) for r in requests)
            )

    return asyncio.run(main())


def _names(root) -> set[str]:
    return {s.name for s, _ in root.walk()}


def _assert_well_nested(root) -> None:
    """Every child's ids link to its parent, within one trace."""
    for parent, _ in root.walk():
        for child in parent.children:
            assert child.trace_id == root.trace_id
            assert child.parent_id == parent.span_id
            assert child.span_id != parent.span_id


@pytest.mark.parametrize("worker_mode", ["inline", "thread"])
def test_in_process_modes_record_full_lifecycle(tracer, worker_mode):
    tier = AsyncServingTier(TierConfig(shards=2, worker_mode=worker_mode))
    responses = _submit_all(tier, [make_request(b) for b in (48, 64, 72)])
    for response in responses:
        assert response.ok and response.trace_id
        (root,) = tracer.trace_roots(response.trace_id)
        names = _names(root)
        assert {"tier.submit", "tier.admission", "tier.coalesce",
                "shard.solve"} <= names
        _assert_well_nested(root)


def test_process_mode_stitches_worker_spans(tracer):
    """N concurrent requests, 2 shards, real worker processes.

    Each response's trace_id must resolve to a single tree whose spans
    cover admission wait, the shard hop, and the *in-worker* solve — the
    worker-side spans are recorded in another process and grafted back.
    """
    tier = AsyncServingTier(TierConfig(shards=2, worker_mode="process"))
    requests = [make_request(b) for b in (48, 64, 72, 96)]
    responses = _submit_all(tier, requests)
    assert all(r.ok for r in responses)
    trace_ids = [r.trace_id for r in responses]
    assert all(trace_ids)
    assert len(set(trace_ids)) == len(requests)  # distinct requests: own trees
    for response in responses:
        roots = tracer.trace_roots(response.trace_id)
        assert len(roots) == 1, "one request must resolve to one tree"
        (root,) = roots
        names = _names(root)
        assert {
            "tier.submit",
            "tier.admission",
            "tier.coalesce",
            "shard.queue",
            "shard.solve",
            "worker.solve",
        } <= names
        _assert_well_nested(root)
        # The worker's own solve span is nested under the shard dispatch.
        worker = next(s for s, _ in root.walk() if s.name == "worker.solve")
        assert worker.tags["pid"] != root.span_id.split("-")[0]


def test_coalesced_riders_share_the_leader_trace_solve(tracer):
    """Identical concurrent requests: one solve, every caller traced.

    Thread mode, not inline: an inline solve completes synchronously
    inside the first ``submit``, so the followers would land on the cache
    instead of the in-flight table and nobody would ride.
    """
    tier = AsyncServingTier(TierConfig(shards=2, worker_mode="thread"))
    responses = _submit_all(tier, [make_request(64)] * 4)
    assert all(r.ok for r in responses)
    roles = []
    for response in responses:
        (root,) = tracer.trace_roots(response.trace_id)
        flight = next(s for s, _ in root.walk() if s.name == "tier.coalesce")
        roles.append(flight.tags["role"])
    assert roles.count("leader") == 1
    assert roles.count("rider") == 3


def test_cache_hits_still_return_a_trace_id(tracer):
    tier = AsyncServingTier(TierConfig(shards=1, worker_mode="inline"))
    first = _submit_all(tier, [make_request(64)])[0]
    second = _submit_all(tier, [make_request(64)])[0]
    assert second.source == "cache"
    assert second.trace_id and second.trace_id != first.trace_id


def test_disabled_tracer_leaves_responses_unstamped():
    tier = AsyncServingTier(TierConfig(shards=1, worker_mode="inline"))
    response = _submit_all(tier, [make_request(64)])[0]
    assert response.ok and response.trace_id == ""
