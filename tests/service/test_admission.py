"""Tiered admission: accept / degrade / shed by priority class and fill."""

from __future__ import annotations

import pytest

from repro.service import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    ClassThresholds,
)


def _decide(priority: str, pending: int, max_pending: int = 100):
    controller = AdmissionController(AdmissionPolicy(max_pending=max_pending))
    return controller.decide(priority, pending)


def test_empty_tier_accepts_everyone():
    for priority in ("interactive", "batch", "background"):
        assert _decide(priority, 0) is AdmissionDecision.ACCEPT


def test_load_strips_background_first():
    # At 50% fill: background (degrade_at=0.45) degrades, the paying
    # classes still get exact solves.
    assert _decide("background", 50) is AdmissionDecision.DEGRADE
    assert _decide("batch", 50) is AdmissionDecision.ACCEPT
    assert _decide("interactive", 50) is AdmissionDecision.ACCEPT


def test_interactive_survives_longest():
    # At 95% fill everyone else sheds or degrades; interactive degrades only.
    assert _decide("interactive", 95) is AdmissionDecision.DEGRADE
    assert _decide("batch", 95) is AdmissionDecision.SHED
    assert _decide("background", 95) is AdmissionDecision.SHED
    # At full capacity even interactive sheds.
    assert _decide("interactive", 100) is AdmissionDecision.SHED


def test_unknown_priority_ranks_at_the_bottom():
    # Traffic that does not declare itself is the first to degrade.
    assert _decide("mystery", 50) is AdmissionDecision.DEGRADE
    assert _decide("mystery", 70) is AdmissionDecision.SHED


def test_thresholds_are_fractions_of_capacity():
    # Same fill fraction, different absolute counts -> same verdict.
    assert _decide("background", 5, max_pending=10) is AdmissionDecision.DEGRADE
    assert _decide("background", 500, max_pending=1000) is (
        AdmissionDecision.DEGRADE
    )


def test_controller_accounting():
    controller = AdmissionController(AdmissionPolicy(max_pending=100))
    controller.decide("interactive", 0)
    controller.decide("background", 50)
    controller.decide("background", 80)
    assert controller.as_dict() == {"accepted": 1, "degraded": 1, "shed": 1}


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_pending=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(thresholds={})
    with pytest.raises(ValueError):
        ClassThresholds(degrade_at=0.9, shed_at=0.5)  # degrade after shed
    with pytest.raises(ValueError):
        ClassThresholds(degrade_at=-0.1, shed_at=0.5)


def test_custom_ladder():
    policy = AdmissionPolicy(
        max_pending=10,
        thresholds={"only": ClassThresholds(degrade_at=0.2, shed_at=0.6)},
    )
    controller = AdmissionController(policy)
    assert controller.decide("only", 1) is AdmissionDecision.ACCEPT
    assert controller.decide("only", 2) is AdmissionDecision.DEGRADE
    assert controller.decide("only", 6) is AdmissionDecision.SHED
    # Unknown classes fall to the single (hence lowest) class.
    assert controller.decide("other", 2) is AdmissionDecision.DEGRADE
