"""Fingerprint stability: same problem, same digest — and only then.

Property tests drive the canonicalization through reorderings and
last-bit float noise (below :data:`PARAM_SIG_DIGITS`), which must not move
the fingerprint, and through semantic changes (budget, objective, bounds,
tolerances), which must.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp.bnb import BnBOptions
from repro.perf.model import PerformanceModel
from repro.service import ComponentSpec, ServiceRequestError, SolveRequest
from repro.service.request import PARAM_SIG_DIGITS, _sig

from tests.service.conftest import make_request

# Fitted curve parameters live in these ranges; keep them away from zero so
# relative perturbations stay meaningful.
_params = st.fixed_dictionaries(
    {
        "a": st.floats(1.0, 1e6),
        "b": st.floats(0.0, 10.0),
        "c": st.floats(0.5, 2.0),
        "d": st.floats(0.0, 100.0),
    }
)
_names = st.lists(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8),
    min_size=2,
    max_size=5,
    unique=True,
)


def _request_from(names, params_list, total_nodes):
    components = {
        name: ComponentSpec(model=PerformanceModel(**params))
        for name, params in zip(names, params_list)
    }
    return SolveRequest(components=components, total_nodes=total_nodes)


@settings(max_examples=50, deadline=None)
@given(
    names=_names,
    data=st.data(),
    total=st.integers(8, 4096),
    seed=st.randoms(use_true_random=False),
)
def test_fingerprint_invariant_to_component_order(names, data, total, seed):
    params_list = [data.draw(_params) for _ in names]
    base = _request_from(names, params_list, total)
    shuffled = list(zip(names, params_list))
    seed.shuffle(shuffled)
    permuted = _request_from(
        [n for n, _ in shuffled], [p for _, p in shuffled], total
    )
    assert base.fingerprint() == permuted.fingerprint()
    assert base.family_key() == permuted.family_key()


@settings(max_examples=50, deadline=None)
@given(names=_names, data=st.data(), total=st.integers(8, 4096))
def test_fingerprint_invariant_to_subdigit_noise(names, data, total):
    # Snap drawn values onto the canonical 12-digit grid first: a raw draw
    # can land exactly on a rounding half-way boundary, where even 1e-15
    # relative noise legitimately flips the last significant digit.  On-grid
    # values sit half an ULP from the nearest boundary, so sub-digit noise
    # must never move the fingerprint.
    params_list = [
        {k: _sig(v) for k, v in data.draw(_params).items()} for _ in names
    ]
    # Perturb every parameter well below the significant-digit cutoff: the
    # rounded canonical value must not move.
    noisy = [
        {k: v * (1.0 + 1e-15) for k, v in params.items()}
        for params in params_list
    ]
    base = _request_from(names, params_list, total)
    jittered = _request_from(names, noisy, total)
    assert base.fingerprint() == jittered.fingerprint()


@settings(max_examples=50, deadline=None)
@given(
    names=_names,
    data=st.data(),
    total_a=st.integers(8, 4096),
    total_b=st.integers(8, 4096),
)
def test_distinct_budgets_never_collide(names, data, total_a, total_b):
    params_list = [data.draw(_params) for _ in names]
    ra = _request_from(names, params_list, total_a)
    rb = _request_from(names, params_list, total_b)
    if total_a == total_b:
        assert ra.fingerprint() == rb.fingerprint()
    else:
        assert ra.fingerprint() != rb.fingerprint()
    # Same curves, any budget: one warm-start family.
    assert ra.family_key() == rb.family_key()


def test_distinct_objectives_never_collide():
    prints = {
        make_request(64, objective=obj).fingerprint()
        for obj in ("min-max", "max-min", "min-sum")
    }
    assert len(prints) == 3


def test_solver_options_are_identity():
    base = make_request(64)
    tighter = make_request(64, options=BnBOptions(gap_rel=1e-9))
    assert base.fingerprint() != tighter.fingerprint()


def test_wire_roundtrip_preserves_fingerprint(request64):
    clone = SolveRequest.from_dict(request64.to_dict())
    assert clone.fingerprint() == request64.fingerprint()
    assert clone.family_key() == request64.family_key()


def test_sig_rounding_is_stable():
    assert _sig(1.0 + 1e-15) == 1.0
    assert _sig(123.456789) == float(f"{123.456789:.{PARAM_SIG_DIGITS}g}")
    assert not math.isnan(_sig(0.0))


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ({}, "components"),
        ({"components": {"a": {"a": 1.0}}}, "total_nodes"),
        ({"components": {"a": {}}, "total_nodes": 4}, "curve parameters"),
        ({"components": 3, "total_nodes": 4}, "components"),
    ],
)
def test_bad_wire_payloads_are_typed_errors(payload, fragment):
    with pytest.raises(ServiceRequestError, match=fragment):
        SolveRequest.from_dict(payload)


def test_validation_rejects_starved_budget():
    with pytest.raises(ServiceRequestError, match="one node each"):
        make_request(total_nodes=2)


def test_validation_rejects_unknown_objective():
    with pytest.raises(ServiceRequestError, match="objective"):
        make_request(64, objective="min-median")


def test_validation_rejects_unknown_algorithm():
    with pytest.raises(ServiceRequestError, match="algorithm"):
        make_request(64, algorithm="simplex")
