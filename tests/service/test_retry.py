"""Retry policy: deterministic capped exponential backoff with jitter."""

from __future__ import annotations

import pytest

from repro.service import RetryPolicy


def test_backoff_is_deterministic_per_key_and_attempt():
    policy = RetryPolicy(base_delay=0.1, max_delay=2.0, jitter=0.5)
    assert policy.backoff("abc", 1) == policy.backoff("abc", 1)
    # Different keys and different attempts draw different jitter.
    assert policy.backoff("abc", 1) != policy.backoff("abd", 1)
    assert policy.backoff("abc", 1) != policy.backoff("abc", 2)


def test_backoff_doubles_without_jitter():
    policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.0)
    assert policy.backoff("k", 1) == pytest.approx(0.1)
    assert policy.backoff("k", 2) == pytest.approx(0.2)
    assert policy.backoff("k", 3) == pytest.approx(0.4)


def test_max_delay_is_a_hard_cap():
    policy = RetryPolicy(base_delay=0.5, max_delay=1.0, jitter=0.0)
    assert policy.backoff("k", 10) == pytest.approx(1.0)
    # Jitter only ever *shortens* the wait, so the cap survives it.
    jittered = RetryPolicy(base_delay=0.5, max_delay=1.0, jitter=1.0)
    for attempt in range(1, 12):
        assert 0.0 <= jittered.backoff("k", attempt) <= 1.0


def test_jitter_shrinks_by_at_most_the_jitter_fraction():
    policy = RetryPolicy(base_delay=0.4, max_delay=10.0, jitter=0.25)
    for attempt in (1, 2, 3):
        base = 0.4 * 2 ** (attempt - 1)
        got = policy.backoff("key", attempt)
        assert base * 0.75 <= got <= base


def test_attempt_zero_waits_nothing():
    assert RetryPolicy().backoff("k", 0) == 0.0


def test_retries_property():
    assert RetryPolicy(max_attempts=3).retries == 2
    assert RetryPolicy(max_attempts=1).retries == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"base_delay": 2.0, "max_delay": 1.0},
        {"jitter": 1.5},
        {"hedge_after": 0.0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
