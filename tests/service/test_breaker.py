"""Circuit breaker: the three-state machine on a fake clock."""

from __future__ import annotations

import pytest

from repro.service import BreakerPolicy, CircuitBreaker
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make(clock, **kwargs) -> CircuitBreaker:
    defaults = dict(failure_threshold=2, reset_timeout=10.0)
    defaults.update(kwargs)
    return CircuitBreaker(BreakerPolicy(**defaults), clock=clock)


def test_consecutive_failures_open_the_breaker(clock):
    br = make(clock)
    assert br.allow("fam")
    br.record_failure("fam")
    assert br.allow("fam")  # one failure: still closed
    br.record_failure("fam")
    assert br.state("fam") == OPEN
    assert not br.allow("fam")


def test_success_resets_the_failure_streak(clock):
    br = make(clock)
    br.record_failure("fam")
    br.record_success("fam")
    br.record_failure("fam")
    assert br.state("fam") == CLOSED


def test_half_open_probe_success_closes(clock):
    br = make(clock)
    br.record_failure("fam")
    br.record_failure("fam")
    clock.advance(10.0)
    assert br.state("fam") == HALF_OPEN
    assert br.allow("fam")  # the probe
    assert not br.allow("fam")  # probe_limit=1: no second probe
    br.record_success("fam")
    assert br.state("fam") == CLOSED
    assert br.allow("fam")


def test_half_open_probe_failure_reopens_with_fresh_timeout(clock):
    br = make(clock)
    br.record_failure("fam")
    br.record_failure("fam")
    clock.advance(10.0)
    assert br.allow("fam")
    br.record_failure("fam")
    assert br.state("fam") == OPEN
    clock.advance(9.0)  # fresh timeout: 9s into the *new* open window
    assert not br.allow("fam")
    clock.advance(1.0)
    assert br.allow("fam")


def test_open_blocks_until_reset_timeout(clock):
    br = make(clock)
    br.record_failure("fam")
    br.record_failure("fam")
    clock.advance(9.99)
    assert not br.allow("fam")
    assert br.state("fam") == OPEN


def test_families_are_isolated(clock):
    br = make(clock)
    br.record_failure("a")
    br.record_failure("a")
    assert not br.allow("a")
    assert br.allow("b")
    assert br.state("b") == CLOSED


def test_multi_probe_policy(clock):
    br = make(clock, probe_limit=2, successes_to_close=2)
    br.record_failure("fam")
    br.record_failure("fam")
    clock.advance(10.0)
    assert br.allow("fam")
    assert br.allow("fam")
    assert not br.allow("fam")  # both probe slots consumed
    br.record_success("fam")
    assert br.state("fam") == HALF_OPEN  # needs 2 successes
    br.record_success("fam")
    assert br.state("fam") == CLOSED


def test_snapshot_reports_state_and_opens(clock):
    br = make(clock)
    br.record_failure("fam")
    br.record_failure("fam")
    snap = br.snapshot()
    assert snap["fam"]["state"] == OPEN
    assert snap["fam"]["opens"] == 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"failure_threshold": 0},
        {"reset_timeout": 0.0},
        {"probe_limit": 0},
        {"probe_limit": 1, "successes_to_close": 2},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        BreakerPolicy(**kwargs)
