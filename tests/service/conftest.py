"""Shared request-building helpers for the service tests."""

from __future__ import annotations

import pytest

from repro.perf.model import PerformanceModel
from repro.service import ComponentSpec, SolveRequest

#: A CESM-flavored three-component curve set, reused across the suite.
CURVES = {
    "atm": dict(a=1200.0, b=0.5, c=1.1, d=2.0),
    "ocn": dict(a=800.0, b=0.3, c=1.2, d=1.0),
    "ice": dict(a=300.0, b=0.2, c=1.0, d=0.5),
}


def make_request(
    total_nodes: int = 64,
    curves: dict | None = None,
    **kwargs,
) -> SolveRequest:
    components = {
        name: ComponentSpec(model=PerformanceModel(**params))
        for name, params in (curves or CURVES).items()
    }
    return SolveRequest(components=components, total_nodes=total_nodes, **kwargs)


@pytest.fixture
def request64() -> SolveRequest:
    return make_request(64)
