"""Trace generation and replay: determinism, shape, and accounting."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.service import (
    AdmissionPolicy,
    AsyncServingTier,
    TierConfig,
    TraceSpec,
    generate_trace,
    replay,
)
from repro.service.loadgen import (
    arrival_times,
    priority_histogram,
    request_pool,
)

SPEC = TraceSpec(n_requests=200, seed=7, n_families=3, duration=10.0)


def test_trace_is_bit_identical_across_generations():
    a = generate_trace(SPEC)
    b = generate_trace(SPEC)
    assert [e.to_payload() for e in a] == [e.to_payload() for e in b]
    assert [e.time for e in a] == [e.time for e in b]


def test_seed_changes_the_trace():
    a = generate_trace(SPEC)
    b = generate_trace(TraceSpec(n_requests=200, seed=8, n_families=3,
                                 duration=10.0))
    assert [e.request.fingerprint() for e in a] != [
        e.request.fingerprint() for e in b
    ]


def test_pool_is_families_times_budgets():
    pool = request_pool(SPEC)
    assert len(pool) == SPEC.n_families * len(SPEC.budgets)
    assert len({r.fingerprint() for r in pool}) == len(pool)


def test_arrivals_are_monotone_within_duration():
    times = arrival_times(SPEC)
    assert len(times) == SPEC.n_requests
    assert (times[1:] >= times[:-1]).all()
    assert times[0] >= 0.0 and times[-1] <= SPEC.duration


def test_flash_crowd_concentrates_arrivals():
    calm = TraceSpec(n_requests=1000, seed=7, duration=10.0,
                     flash_crowds=0, diurnal_amplitude=0.0)
    spiky = TraceSpec(n_requests=1000, seed=7, duration=10.0,
                      flash_crowds=1, flash_magnitude=8.0,
                      diurnal_amplitude=0.0)
    # The busiest 10% window of the spiky trace holds far more arrivals
    # than the flat trace's uniform share.
    def peak_share(spec):
        times = arrival_times(spec)
        window = spec.duration / 10
        return max(
            ((times >= t) & (times < t + window)).sum()
            for t in times
        ) / spec.n_requests

    assert peak_share(calm) < 0.15
    assert peak_share(spiky) > 0.3


def test_popularity_is_zipf_skewed():
    trace = generate_trace(TraceSpec(n_requests=2000, seed=7))
    counts = Counter(e.request.fingerprint() for e in trace)
    top, *_, bottom = [n for _, n in counts.most_common()]
    assert top > 5 * max(bottom, 1)  # heavy head, long tail


def test_priority_mix_roughly_holds():
    trace = generate_trace(TraceSpec(n_requests=2000, seed=7))
    hist = priority_histogram(trace)
    assert sum(hist.values()) == 2000
    assert hist["interactive"] == pytest.approx(1000, rel=0.15)
    assert hist["background"] == pytest.approx(400, rel=0.25)


def test_spec_validation():
    with pytest.raises(ValueError):
        TraceSpec(n_requests=0)
    with pytest.raises(ValueError):
        TraceSpec(n_families=0)
    with pytest.raises(ValueError):
        TraceSpec(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        TraceSpec(priority_mix=(("batch", -1.0),))


def test_replay_accounts_for_every_event():
    spec = TraceSpec(n_requests=60, seed=11, n_families=2, budgets=(48, 64))
    trace = generate_trace(spec)
    tier = AsyncServingTier(
        TierConfig(
            shards=2,
            worker_mode="thread",
            admission=AdmissionPolicy(max_pending=2 * len(trace)),
        )
    )
    report = replay(tier, trace, speed=0.0)
    assert report.lost == 0
    assert report.shed == 0
    assert report.errors == 0
    assert report.answered == spec.n_requests
    snap = report.snapshot()
    assert snap["answered"] + snap["shed"] + snap["errors"] + snap["lost"] == (
        spec.n_requests
    )
    # A burst of 60 events over 4 distinct requests must coalesce heavily.
    assert report.coalesce["riders"] > 0
    assert snap["p50"] <= snap["p99"] <= snap["p999"]


def test_replay_reports_per_priority_percentiles():
    spec = TraceSpec(n_requests=60, seed=11, n_families=2, budgets=(48, 64))
    trace = generate_trace(spec)
    tier = AsyncServingTier(
        TierConfig(
            shards=2,
            worker_mode="thread",
            admission=AdmissionPolicy(max_pending=2 * len(trace)),
        )
    )
    snap = replay(tier, trace, speed=0.0).snapshot()
    per = snap["per_priority"]
    # Every class the trace mixed in answered at least once and reports
    # its own quantile ladder; counts reconcile with the overall total.
    assert set(per) == {"interactive", "batch", "background"}
    assert sum(stats["count"] for stats in per.values()) == snap["answered"]
    for stats in per.values():
        assert stats["count"] > 0
        assert 0.0 <= stats["p50"] <= stats["p99"] <= stats["p999"]
        assert stats["mean_latency"] >= 0.0


def test_replay_sheds_under_a_tiny_admission_budget():
    spec = TraceSpec(n_requests=40, seed=11, n_families=2, budgets=(48, 64))
    trace = generate_trace(spec)
    tier = AsyncServingTier(
        TierConfig(
            shards=1,
            worker_mode="thread",
            admission=AdmissionPolicy(max_pending=2),
        )
    )
    report = replay(tier, trace, speed=0.0)
    assert report.lost == 0  # shed is an *answer*, not a loss
    assert report.shed > 0
    assert report.answered + report.shed + report.errors == spec.n_requests
