"""Consistent-hash ring: determinism, balance, and minimal key movement."""

from __future__ import annotations

import pytest

from repro.service import HashRing
from repro.service.sharding import DEFAULT_VNODES

KEYS = [f"family-{i:04d}" for i in range(2000)]


def test_lookup_is_deterministic_across_instances():
    a = HashRing(["s0", "s1", "s2", "s3"])
    b = HashRing(["s0", "s1", "s2", "s3"])
    assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]


def test_lookup_ignores_shard_insertion_order():
    # Ring points are a pure function of shard names, so construction order
    # cannot change placement (no "whoever joined first owns more").
    forward = HashRing(["s0", "s1", "s2", "s3"])
    reverse = HashRing(["s3", "s2", "s1", "s0"])
    assert [forward.lookup(k) for k in KEYS] == [reverse.lookup(k) for k in KEYS]


def test_every_key_lands_on_a_member_shard():
    ring = HashRing(["s0", "s1", "s2"])
    assert set(ring.spread(KEYS)) == {"s0", "s1", "s2"}
    assert sum(ring.spread(KEYS).values()) == len(KEYS)


def test_vnodes_keep_the_spread_balanced():
    ring = HashRing([f"s{i}" for i in range(8)], vnodes=DEFAULT_VNODES)
    counts = ring.spread(KEYS)
    mean = len(KEYS) / len(counts)
    # With ~100 vnodes the imbalance concentrates near 1/sqrt(vnodes); 1.5x
    # of the mean is far outside that envelope and would flag a broken ring.
    assert max(counts.values()) < 1.5 * mean
    assert min(counts.values()) > 0.5 * mean


@pytest.mark.parametrize("n", [4, 8])
def test_adding_a_shard_moves_at_most_its_fair_share(n):
    before = HashRing([f"s{i}" for i in range(n)])
    after = HashRing([f"s{i}" for i in range(n)])
    after.add_shard(f"s{n}")
    moved = sum(1 for k in KEYS if before.lookup(k) != after.lookup(k))
    # Consistent hashing's whole point: ~K/(N+1) keys move to the joiner,
    # everyone else stays put.  Allow 1.5x slack for vnode arc variance.
    assert moved <= 1.5 * len(KEYS) / (n + 1)
    # ...and every moved key moved *to* the new shard, never between
    # incumbents.
    assert all(
        after.lookup(k) == f"s{n}"
        for k in KEYS
        if before.lookup(k) != after.lookup(k)
    )


def test_removing_a_shard_only_reassigns_its_own_keys():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    owned_before = {k: ring.lookup(k) for k in KEYS}
    ring.remove_shard("s2")
    for key, owner in owned_before.items():
        if owner != "s2":
            assert ring.lookup(key) == owner
        else:
            assert ring.lookup(key) != "s2"


def test_membership_errors():
    ring = HashRing(["s0", "s1"])
    with pytest.raises(ValueError):
        ring.add_shard("s0")  # double-join would double its ring share
    with pytest.raises(ValueError):
        ring.remove_shard("nope")
    ring.remove_shard("s1")
    with pytest.raises(ValueError):
        ring.remove_shard("s0")  # the last shard must stay
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["s0"], vnodes=0)
