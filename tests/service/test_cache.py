"""LRU/TTL behavior of the solution cache, on a fake clock."""

from __future__ import annotations

from repro.service import SolutionCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def test_basic_hit_miss_accounting():
    cache = SolutionCache(capacity=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.inserts) == (1, 1, 1)
    assert stats.hit_rate == 0.5


def test_lru_evicts_least_recently_used():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # touch "a" so "b" is now the LRU entry
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_reinsert_updates_value_without_eviction():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("a", 10)
    cache.put("b", 2)
    assert cache.get("a") == 10
    assert cache.stats.evictions == 0


def test_ttl_expires_entries():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.0)
    assert cache.get("a") == 1
    clock.advance(2.0)  # 11s after insert: past the 10s TTL
    assert cache.get("a") is None
    assert cache.stats.expirations == 1
    # Expired entries do not linger.
    assert "a" not in cache


def test_ttl_is_from_insert_not_last_access():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    for _ in range(3):
        clock.advance(3.0)
        cache.get("a")
    clock.advance(3.0)  # 12s after insert even though accessed 3s ago
    assert cache.get("a") is None


def test_peek_does_not_touch_lru_or_stats():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    hits_before = cache.stats.hits
    cache.put("c", 3)  # "a" was peeked, not touched: still the LRU victim
    assert cache.peek("a") is None
    assert cache.stats.hits == hits_before


def test_contains_is_non_mutating():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert "a" in cache
    cache.put("c", 3)  # __contains__ must not have promoted "a"
    assert "a" not in cache
