"""LRU/TTL behavior of the solution cache, on a fake clock."""

from __future__ import annotations

from repro.service import SolutionCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def test_basic_hit_miss_accounting():
    cache = SolutionCache(capacity=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.inserts) == (1, 1, 1)
    assert stats.hit_rate == 0.5


def test_lru_evicts_least_recently_used():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # touch "a" so "b" is now the LRU entry
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_reinsert_updates_value_without_eviction():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("a", 10)
    cache.put("b", 2)
    assert cache.get("a") == 10
    assert cache.stats.evictions == 0


def test_ttl_expires_entries():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.0)
    assert cache.get("a") == 1
    clock.advance(2.0)  # 11s after insert: past the 10s TTL
    assert cache.get("a") is None
    assert cache.stats.expirations == 1
    # Expired entries do not linger.
    assert "a" not in cache


def test_ttl_is_from_insert_not_last_access():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    for _ in range(3):
        clock.advance(3.0)
        cache.get("a")
    clock.advance(3.0)  # 12s after insert even though accessed 3s ago
    assert cache.get("a") is None


def test_peek_does_not_touch_lru_or_stats():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    hits_before = cache.stats.hits
    cache.put("c", 3)  # "a" was peeked, not touched: still the LRU victim
    assert cache.peek("a") is None
    assert cache.stats.hits == hits_before


def test_contains_is_non_mutating():
    cache = SolutionCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert "a" in cache
    cache.put("c", 3)  # __contains__ must not have promoted "a"
    assert "a" not in cache


def test_entry_is_valid_at_exactly_the_ttl_boundary():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(10.0)  # age == ttl: still valid, expiry is strictly after
    assert "a" in cache
    assert cache.get("a") == 1
    clock.advance(1e-9)
    assert cache.get("a") is None
    assert cache.stats.expirations == 1


def test_expired_corpse_serves_stale_until_purged():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(30.0)
    assert "a" not in cache and cache.get("a") is None
    # The corpse stays physically present for bounded-staleness serving...
    assert len(cache) == 1
    assert cache.stale("a") == (1, 30.0)
    assert cache.stale("a", max_age=60.0) == (1, 30.0)
    assert cache.stale("a", max_age=20.0) is None  # too old for this caller
    # ...until an explicit purge removes it.
    assert cache.purge() == 1
    assert cache.stale("a") is None
    assert len(cache) == 0


def test_stale_reads_touch_no_hit_miss_accounting():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(30.0)
    before = (cache.stats.hits, cache.stats.misses)
    assert cache.stale("a") is not None
    assert (cache.stats.hits, cache.stats.misses) == before


def test_expiration_is_booked_exactly_once():
    clock = FakeClock()
    cache = SolutionCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(30.0)
    cache.get("a")  # books the expiration
    cache.get("a")  # a second miss on the corpse must not double-book
    cache.purge()  # nor must the sweep
    assert cache.stats.expirations == 1
    assert cache.stats.misses == 2


def test_capacity_removal_of_a_corpse_books_expiration_not_eviction():
    clock = FakeClock()
    cache = SolutionCache(capacity=2, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(30.0)  # "a" dies of age, unobserved
    cache.put("b", 2)
    cache.put("c", 3)  # capacity pushes the corpse out
    assert cache.stats.expirations == 1
    assert cache.stats.evictions == 0
    cache.put("d", 4)  # now a *live* entry is the victim
    assert cache.stats.evictions == 1


def test_stats_mirror_registry_counters():
    from repro.obs.metrics import REGISTRY

    counters = {
        name: REGISTRY.counter(f"service_cache_{name}_total").value()
        for name in ("hits", "misses", "evictions", "expirations", "inserts")
    }
    clock = FakeClock()
    cache = SolutionCache(capacity=1, ttl=10.0, clock=clock)
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    cache.put("b", 2)  # evicts live "a"
    clock.advance(30.0)
    cache.get("b")  # expired: miss + expiration
    deltas = {
        name: REGISTRY.counter(f"service_cache_{name}_total").value() - before
        for name, before in counters.items()
    }
    assert deltas == {
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "evictions": cache.stats.evictions,
        "expirations": cache.stats.expirations,
        "inserts": cache.stats.inserts,
    }
    assert cache.stats.as_dict()["hit_rate"] == cache.stats.hit_rate


def test_concurrent_gets_and_puts_keep_accounting_consistent():
    import threading

    cache = SolutionCache(capacity=16)
    for i in range(16):
        cache.put(f"k{i}", i)
    gets_per_thread = 200
    errors = []

    def hammer(tid: int) -> None:
        try:
            for i in range(gets_per_thread):
                key = f"k{(tid * 7 + i) % 24}"  # some keys always miss
                value = cache.get(key)
                if value is not None:
                    assert value == int(key[1:])
                if i % 50 == 0:
                    cache.put(key, int(key[1:]))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Every get was booked exactly once as a hit or a miss.
    assert cache.stats.lookups == 8 * gets_per_thread
    assert len(cache) <= 16
