"""Tests for the CESM execution simulator."""

import numpy as np
import pytest

from repro.cesm.grids import eighth_degree, one_degree
from repro.cesm.layouts import Layout, layout_total_time
from repro.cesm.simulator import CESMSimulator
from repro.core.spec import Allocation
from repro.util.rng import default_rng


@pytest.fixture
def sim():
    return CESMSimulator(one_degree())


ALLOC_128 = Allocation({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})


def test_component_time_positive_and_noisy(sim, rng):
    t1 = sim.component_time("atm", 104, rng)
    t2 = sim.component_time("atm", 104, rng)
    assert t1 > 0 and t2 > 0
    assert t1 != t2  # run-to-run jitter


def test_component_time_validation(sim, rng):
    with pytest.raises(KeyError):
        sim.component_time("warp", 10, rng)
    with pytest.raises(ValueError):
        sim.component_time("atm", 0, rng)


def test_true_time_noise_free(sim):
    assert sim.true_component_time("atm", 104) == sim.true_component_time("atm", 104)


def test_execute_matches_layout_semantics(sim, rng):
    result = sim.execute(ALLOC_128, rng)
    assert set(result.component_times) == {"lnd", "ice", "atm", "ocn"}
    assert result.total_time == pytest.approx(
        layout_total_time(Layout.HYBRID, result.component_times)
    )
    assert result.metadata["layout"] == "HYBRID"
    assert result.metadata["footprint_nodes"] == 128
    # The excluded minor components surface in metadata only (§II).
    assert 0 < result.metadata["cpl_time"] < 0.1 * result.total_time
    assert 0 < result.metadata["rtm_time"] < 0.1 * result.total_time


def test_execute_reproducible_with_same_seed(sim):
    r1 = sim.execute(ALLOC_128, default_rng(7))
    r2 = sim.execute(ALLOC_128, default_rng(7))
    assert r1.component_times == r2.component_times


def test_execute_table3_manual_row_shape(sim):
    """Executing the paper's manual 1deg/128 allocation lands near its
    published times (Table III block 1, manual columns)."""
    times = np.array(
        [sim.execute(ALLOC_128, default_rng(s)).total_time for s in range(10)]
    )
    assert abs(times.mean() - 416.0) / 416.0 < 0.06


def test_validate_allocation_layout1_nesting(sim):
    bad = Allocation({"lnd": 60, "ice": 60, "atm": 104, "ocn": 24})
    with pytest.raises(ValueError, match="ice\\+lnd"):
        sim.execute(bad, default_rng(0))


def test_validate_allocation_machine_capacity():
    cfg = one_degree()
    sim = CESMSimulator(cfg)
    too_big = Allocation(
        {"lnd": 10, "ice": 10, "atm": cfg.machine_nodes, "ocn": 768}
    )
    with pytest.raises(ValueError, match="machine"):
        sim.execute(too_big, default_rng(0))


def test_validate_allocation_minimums():
    sim = CESMSimulator(eighth_degree())
    tiny = Allocation({"lnd": 1, "ice": 64, "atm": 128, "ocn": 480})
    with pytest.raises(ValueError, match="below minimum"):
        sim.execute(tiny, default_rng(0))


def test_missing_component_rejected(sim):
    with pytest.raises(ValueError, match="missing component"):
        sim.validate_allocation(Allocation({"atm": 10, "ocn": 4, "ice": 4}))


def test_default_split_valid_across_sizes(sim):
    for total in (32, 128, 512, 2048):
        alloc = sim.default_split(total)
        sim.validate_allocation(alloc)
        assert alloc["atm"] + alloc["ocn"] <= total


def test_default_split_respects_constrained_ocean():
    sim = CESMSimulator(eighth_degree())
    alloc = sim.default_split(8192)
    assert alloc["ocn"] in sim.config.ocean_allowed.values


def test_default_split_too_small(sim):
    with pytest.raises(ValueError):
        sim.default_split(2)


def test_benchmark_produces_suite(sim, rng):
    suite = sim.benchmark([64, 128, 512], rng, probe_extremes=False)
    assert set(suite.components) == {"lnd", "ice", "atm", "ocn"}
    for comp in suite.components:
        assert len(suite[comp]) == 3


def test_benchmark_probe_adds_ocean_heavy_run(sim, rng):
    plain = sim.benchmark([64, 128, 512], rng, probe_extremes=False)
    probed = sim.benchmark([64, 128, 512], rng, probe_extremes=True)
    assert len(probed["ocn"]) == len(plain["ocn"]) + 1
    # The probe brackets the ocean range: its largest sampled count clearly
    # exceeds the default splits' (which target ~25% of the machine).
    assert probed["ocn"].node_range[1] > plain["ocn"].node_range[1]


def test_ocean_heavy_split_valid(sim):
    alloc = sim.ocean_heavy_split(512)
    sim.validate_allocation(alloc)
    assert alloc["ocn"] > sim.default_split(512)["ocn"]


def test_benchmark_replicates(sim, rng):
    suite = sim.benchmark([64, 128], rng, runs_per_count=3, probe_extremes=False)
    assert len(suite["atm"]) == 6
    with pytest.raises(ValueError):
        sim.benchmark([64], rng, runs_per_count=0)


def test_benchmark_times_follow_ground_truth(sim, rng):
    suite = sim.benchmark([64, 128, 512, 2048], rng)
    for comp in suite.components:
        for obs in suite[comp]:
            truth = sim.true_component_time(comp, obs.nodes)
            assert abs(obs.seconds / truth - 1.0) < 0.4  # within noise envelope


def test_eighth_degree_off_spot_penalty_visible():
    sim = CESMSimulator(eighth_degree(constrained_ocean=False))
    on_spot = sim.true_component_time("ocn", 19460)
    # Base curve value at an off-spot count vs its penalized truth.
    base = sim.config.ground_truth["ocn"].model.time(11880)
    penalized = sim.true_component_time("ocn", 11880)
    assert penalized >= base  # penalty only slows down
    assert on_spot < base  # sanity: more nodes, faster base curve
