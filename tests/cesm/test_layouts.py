"""Tests for the Table I layout formulations."""

import pytest

from repro.cesm.grids import one_degree
from repro.cesm.layouts import (
    Layout,
    allocation_from_solution,
    footprint,
    formulate_layout,
    layout_total_time,
)
from repro.core.spec import Allocation
from repro.minlp.oa import solve_minlp_oa
from repro.minlp.solution import Solution, Status
from repro.perf.model import PerformanceModel

#: Small, exactly-known models for fast layout solves.
MODELS = {
    "lnd": PerformanceModel(a=100.0, d=1.0),
    "ice": PerformanceModel(a=400.0, d=2.0),
    "atm": PerformanceModel(a=2000.0, d=10.0),
    "ocn": PerformanceModel(a=600.0, d=8.0),
}

TIMES = {"ice": 5.0, "lnd": 3.0, "atm": 20.0, "ocn": 24.0}


def test_layout_total_time_semantics():
    assert layout_total_time(Layout.HYBRID, TIMES) == 25.0  # max(5+20, 24)
    assert layout_total_time(Layout.SEQUENTIAL_GROUP, TIMES) == 28.0
    assert layout_total_time(Layout.FULLY_SEQUENTIAL, TIMES) == 52.0


def test_hybrid_dominates_sequential():
    """Layout 1 <= layout 2 <= layout 3 for any fixed times (Fig. 4 shape)."""
    t1 = layout_total_time(Layout.HYBRID, TIMES)
    t2 = layout_total_time(Layout.SEQUENTIAL_GROUP, TIMES)
    t3 = layout_total_time(Layout.FULLY_SEQUENTIAL, TIMES)
    assert t1 <= t2 <= t3


def _solve(layout, total=64, tsync=None):
    cfg = one_degree()
    problem = formulate_layout(MODELS, total, cfg, layout=layout, tsync=tsync)
    return problem, solve_minlp_oa(problem).require_ok()


def test_layout1_constraint_structure():
    cfg = one_degree()
    p = formulate_layout(MODELS, 64, cfg, layout=Layout.HYBRID)
    names = {c.name for c in p.constraints}
    assert {"icelnd_ge_ice", "icelnd_ge_lnd", "makespan_atm_side",
            "makespan_ocn_side", "nodes_atm_ocn", "nodes_ice_lnd"} <= names
    # Ocean's even-count sweet-spot set becomes SOS1; at 64 nodes the atm set
    # trims to the contiguous run [1, 64] and needs no binaries at all.
    sos_names = {s.name for s in p.sos1_sets}
    assert "sos_ocn" in sos_names and "sos_atm" not in sos_names


def test_layout1_atm_sos_appears_on_big_machine():
    cfg = one_degree()
    p = formulate_layout(MODELS, 2048, cfg, layout=Layout.HYBRID)
    # 2048 >= 1664, so A = {1..1638} u {1664} has two runs -> SOS1 + binaries.
    assert "sos_atm" in {s.name for s in p.sos1_sets}
    assert "z_atm[0]" in p.variable_names and "z_atm[1]" in p.variable_names


def test_layout1_solution_is_feasible_and_consistent():
    problem, sol = _solve(Layout.HYBRID)
    alloc = allocation_from_solution(sol)
    assert alloc["atm"] + alloc["ocn"] <= 64
    assert alloc["ice"] + alloc["lnd"] <= alloc["atm"]
    assert alloc["ocn"] % 2 == 0 or alloc["ocn"] == 768  # in O
    # Objective equals the layout makespan at the model-predicted times.
    times = {c: MODELS[c].time(alloc[c]) for c in MODELS}
    assert sol.objective == pytest.approx(
        layout_total_time(Layout.HYBRID, times), rel=1e-4
    )


def test_layout2_solution_semantics():
    problem, sol = _solve(Layout.SEQUENTIAL_GROUP)
    alloc = allocation_from_solution(sol)
    for comp in ("ice", "lnd", "atm"):
        assert alloc[comp] + alloc["ocn"] <= 64
    times = {c: MODELS[c].time(alloc[c]) for c in MODELS}
    assert sol.objective == pytest.approx(
        layout_total_time(Layout.SEQUENTIAL_GROUP, times), rel=1e-4
    )


def test_layout3_solution_semantics():
    problem, sol = _solve(Layout.FULLY_SEQUENTIAL)
    alloc = allocation_from_solution(sol)
    times = {c: MODELS[c].time(alloc[c]) for c in MODELS}
    assert sol.objective == pytest.approx(
        layout_total_time(Layout.FULLY_SEQUENTIAL, times), rel=1e-4
    )


def test_predicted_layout_ordering():
    """Optimal layout-1 time <= layout-2 <= layout-3 at equal machine size."""
    totals = {}
    for layout in Layout:
        _, sol = _solve(layout)
        totals[layout] = sol.objective
    assert totals[Layout.HYBRID] <= totals[Layout.SEQUENTIAL_GROUP] + 1e-6
    assert totals[Layout.SEQUENTIAL_GROUP] <= totals[Layout.FULLY_SEQUENTIAL] + 1e-6


def test_tsync_constrains_ice_lnd_gap():
    """Tsync is nonconvex (difference of convex T's), so it is solved with
    NLP-based branch-and-bound; the realized gap must respect the bound."""
    from repro.minlp.nlpbb import solve_minlp_nlpbb

    _, free = _solve(Layout.HYBRID, tsync=None)
    cfg = one_degree()
    problem = formulate_layout(MODELS, 64, cfg, layout=Layout.HYBRID, tsync=0.5)
    tight = solve_minlp_nlpbb(problem, multistart=3).require_ok()
    a = allocation_from_solution(tight)
    ti = MODELS["ice"].time(a["ice"])
    tl = MODELS["lnd"].time(a["lnd"])
    assert abs(ti - tl) <= 0.5 + 1e-4
    # Additional synchronization can only hurt (§III-A).
    assert tight.objective >= free.objective - 1e-6


def test_tsync_validation():
    with pytest.raises(ValueError, match="tsync"):
        formulate_layout(MODELS, 64, one_degree(), tsync=-1.0)


def test_missing_model_rejected():
    with pytest.raises(ValueError, match="missing"):
        formulate_layout({"atm": MODELS["atm"]}, 64, one_degree())


def test_tiny_machine_rejected():
    with pytest.raises(ValueError, match="total_nodes"):
        formulate_layout(MODELS, 1, one_degree())


def test_allocation_from_solution_requires_all_vars():
    sol = Solution(Status.OPTIMAL, values={"n_atm": 3.0})
    with pytest.raises(KeyError):
        allocation_from_solution(sol)


def test_footprint_per_layout():
    alloc = Allocation({"lnd": 3, "ice": 5, "atm": 10, "ocn": 6})
    assert footprint(Layout.HYBRID, alloc, 64) == 16
    assert footprint(Layout.SEQUENTIAL_GROUP, alloc, 64) == 16
    assert footprint(Layout.FULLY_SEQUENTIAL, alloc, 64) == 10
