"""Tests for the MPI-task/OpenMP-thread granularity model."""

import pytest

from repro.cesm.grids import one_degree
from repro.cesm.simulator import CESMSimulator
from repro.cesm.tasking import (
    DEFAULT_PROFILES,
    FULL_NODE_POLICIES,
    TaskingPolicy,
    ThreadingProfile,
    best_tasking,
    tasking_speedup,
)
from repro.util.rng import default_rng


def test_policy_validation():
    TaskingPolicy(1, 4)
    TaskingPolicy(4, 1)
    with pytest.raises(ValueError, match="oversubscribes"):
        TaskingPolicy(4, 2)
    with pytest.raises(ValueError):
        TaskingPolicy(0, 1)


def test_policy_accounting():
    p = TaskingPolicy(2, 2)
    assert p.cores_used == 4
    assert p.idle_cores == 0
    assert p.mpi_tasks(10) == 20
    with pytest.raises(ValueError):
        p.mpi_tasks(0)
    assert TaskingPolicy(1, 2).idle_cores == 2


def test_full_node_policies_cover_four_cores():
    assert all(p.cores_used == 4 for p in FULL_NODE_POLICIES)


def test_profile_validation():
    with pytest.raises(ValueError):
        ThreadingProfile(alpha=0.0)
    with pytest.raises(ValueError):
        ThreadingProfile(alpha=1.5)


def test_perfect_threading_indifferent_between_policies():
    perfect = ThreadingProfile(alpha=1.0)
    throughputs = {p: perfect.throughput(p) for p in FULL_NODE_POLICIES}
    assert len(set(round(v, 9) for v in throughputs.values())) == 1
    assert perfect.time_multiplier(TaskingPolicy(4, 1)) == pytest.approx(1.0)


def test_poor_threading_prefers_mpi_tasks():
    mpi_ish = ThreadingProfile(alpha=0.5)
    assert mpi_ish.best_policy() == TaskingPolicy(4, 1)
    # 4 tasks x 1 thread gives 4 units; default 1x4 gives 4^0.5 = 2 units.
    assert mpi_ish.time_multiplier(TaskingPolicy(4, 1)) == pytest.approx(0.5)


def test_default_profiles_story():
    """CAM threads well, POP prefers ranks — the 2010s folklore encoded."""
    best = best_tasking()
    assert best["ocn"] == TaskingPolicy(4, 1)
    assert best["ice"] == TaskingPolicy(4, 1)
    speedups = tasking_speedup()
    # Atmosphere is nearly policy-indifferent; ocean gains substantially.
    assert speedups["atm"] < 1.2
    assert speedups["ocn"] > 1.5
    assert all(s >= 1.0 for s in speedups.values())


def test_simulator_applies_tasking_multiplier():
    cfg = one_degree()
    default_sim = CESMSimulator(cfg)
    tuned_sim = CESMSimulator(cfg, tasking={"ocn": TaskingPolicy(4, 1)})
    t_default = default_sim.component_time("ocn", 24, default_rng(3))
    t_tuned = tuned_sim.component_time("ocn", 24, default_rng(3))
    expected = DEFAULT_PROFILES["ocn"].time_multiplier(TaskingPolicy(4, 1))
    assert t_tuned / t_default == pytest.approx(expected, rel=1e-9)
    assert t_tuned < t_default
    # Untouched components unaffected.
    a1 = default_sim.component_time("atm", 104, default_rng(4))
    a2 = tuned_sim.component_time("atm", 104, default_rng(4))
    assert a1 == a2


def test_simulator_tasking_validation():
    cfg = one_degree()
    with pytest.raises(KeyError, match="unknown component"):
        CESMSimulator(cfg, tasking={"warp": TaskingPolicy(1, 4)})
    with pytest.raises(TypeError):
        CESMSimulator(cfg, tasking={"ocn": (4, 1)})
