"""Tests for CESM component ground truth and calibration."""

import numpy as np
import pytest

from repro.cesm.components import (
    COMPONENTS,
    GroundTruthComponent,
    eighth_degree_ground_truth,
    one_degree_ground_truth,
)
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng


def test_component_registry():
    assert COMPONENTS == ("lnd", "ice", "atm", "ocn")


def test_unknown_component_rejected():
    with pytest.raises(ValueError, match="unknown"):
        GroundTruthComponent("warp", PerformanceModel(a=1.0))


def test_sensitivity_requires_sweet_spots():
    with pytest.raises(ValueError, match="sweet-spot"):
        GroundTruthComponent(
            "ocn", PerformanceModel(a=1.0), decomposition_sensitivity=0.2
        )


# --- calibration spot checks against Table III -----------------------------


@pytest.mark.parametrize(
    "comp,nodes,expected,rel",
    [
        ("atm", 104, 306.95, 0.03),   # 1deg manual column
        ("atm", 1664, 61.99, 0.05),
        ("ocn", 24, 362.67, 0.03),
        ("lnd", 24, 63.77, 0.03),
        ("lnd", 384, 5.78, 0.10),
        ("ice", 80, 109.05, 0.06),
        ("ice", 1280, 17.91, 0.06),
    ],
)
def test_one_degree_calibration(comp, nodes, expected, rel):
    truth = one_degree_ground_truth()
    assert truth[comp].true_time(nodes) == pytest.approx(expected, rel=rel)


@pytest.mark.parametrize(
    "comp,nodes,expected,rel",
    [
        ("atm", 5836, 2533.76, 0.03),
        ("atm", 26644, 787.48, 0.03),
        ("ocn", 2356, 3785.33, 0.02),
        ("ocn", 6124, 1645.01, 0.02),
        ("ice", 5350, 475.61, 0.04),
        ("ice", 24424, 214.20, 0.04),
        ("lnd", 486, 147.40, 0.04),
        ("lnd", 2220, 44.23, 0.04),
    ],
)
def test_eighth_degree_calibration(comp, nodes, expected, rel):
    truth = eighth_degree_ground_truth()
    assert truth[comp].true_time(nodes) == pytest.approx(expected, rel=rel)


def test_decomposition_penalty_on_sweet_spot_is_one():
    ocn = eighth_degree_ground_truth()["ocn"]
    for n in ocn.sweet_spots:
        assert ocn.decomposition_penalty(n) == 1.0


def test_decomposition_penalty_off_sweet_spot_bounded_and_deterministic():
    ocn = eighth_degree_ground_truth()["ocn"]
    p1 = ocn.decomposition_penalty(11880)
    p2 = ocn.decomposition_penalty(11880)
    assert p1 == p2  # same count -> same decomposition
    assert 1.0 <= p1 <= 1.0 + ocn.decomposition_sensitivity
    # Different counts sample different penalties somewhere in the range.
    penalties = {ocn.decomposition_penalty(n) for n in range(9000, 9050)}
    assert len(penalties) > 10


def test_ice_noisier_than_atm():
    truth = one_degree_ground_truth()
    assert truth["ice"].noise > truth["atm"].noise


def test_sample_time_jitter_statistics(rng):
    atm = one_degree_ground_truth()["atm"]
    samples = np.array([atm.sample_time(104, rng) for _ in range(300)])
    base = atm.true_time(104)
    assert abs(samples.mean() / base - 1.0) < 0.01
    assert 0.005 < samples.std() / base < 0.04


def test_zero_noise_is_deterministic():
    comp = GroundTruthComponent("atm", PerformanceModel(a=100.0, d=1.0), noise=0.0)
    rng = default_rng(0)
    assert comp.sample_time(10, rng) == comp.true_time(10)
