"""Tests for the ML sea-ice decomposition selector (the ref-[10] mini-repro)."""

import numpy as np
import pytest

from repro.cesm.components import one_degree_ground_truth
from repro.cesm.ice_decomp import (
    BLOCK_SIZES,
    DECOMPOSITIONS,
    STRATEGIES,
    Decomposition,
    DecompositionSelector,
    collect_training_data,
    default_decomposition,
    oracle_best,
    sample_ice_time,
    true_multiplier,
)
from repro.util.rng import default_rng

ICE_MODEL = one_degree_ground_truth()["ice"].model
TRAIN_NODES = (8, 16, 32, 64, 128, 256, 512, 1024, 2048)


def test_space_shape():
    assert len(STRATEGIES) == 7  # "seven decomposition strategies"
    assert len(DECOMPOSITIONS) == 7 * len(BLOCK_SIZES)


def test_decomposition_validation():
    with pytest.raises(ValueError):
        Decomposition("hilbert", 16)
    with pytest.raises(ValueError):
        Decomposition("rake", 7)


def test_true_multiplier_properties():
    for d in DECOMPOSITIONS[:5]:
        for n in (4, 64, 1024):
            m = true_multiplier(d, n)
            assert 1.0 <= m <= 1.5
    # Deterministic.
    d = DECOMPOSITIONS[0]
    assert true_multiplier(d, 100) == true_multiplier(d, 100)
    with pytest.raises(ValueError):
        true_multiplier(d, 0)


def test_arms_cross_over():
    """No single arm dominates at every node count (otherwise no ML needed)."""
    bests = {oracle_best(n) for n in (4, 16, 64, 256, 1024, 4096, 16384)}
    assert len(bests) > 1


def test_default_policy_rule():
    assert default_decomposition(32).block_size == 64
    assert default_decomposition(100).strategy == "cartesian1d"
    assert default_decomposition(10000).block_size == 8
    with pytest.raises(ValueError):
        default_decomposition(0)


def test_sample_ice_time_composition(rng):
    d = DECOMPOSITIONS[3]
    t = sample_ice_time(ICE_MODEL, d, 128, rng, noise=0.0)
    assert t == pytest.approx(ICE_MODEL.time(128) * true_multiplier(d, 128))


def test_collect_training_data_shape(rng):
    samples = collect_training_data(ICE_MODEL, (16, 64), rng, runs_per_arm=2)
    assert len(samples) == 2 * len(DECOMPOSITIONS) * 2
    for s in samples:
        assert s.multiplier > 0.9


def test_selector_validation():
    with pytest.raises(ValueError):
        DecompositionSelector(k=0)
    with pytest.raises(ValueError, match="no training samples"):
        DecompositionSelector().fit([])
    trained_arm = Decomposition("cartesian2d", 16)
    sel = DecompositionSelector().fit(
        collect_training_data(ICE_MODEL, (16,), default_rng(1), arms=[trained_arm])
    )
    assert sel.arms == (trained_arm,)
    with pytest.raises(KeyError, match="no training data"):
        sel.predict(Decomposition("rake", 8), 16)


def test_selector_predicts_multiplier_accurately(rng):
    samples = collect_training_data(ICE_MODEL, TRAIN_NODES, rng, noise=0.01)
    sel = DecompositionSelector(k=3).fit(samples)
    for d in DECOMPOSITIONS[::5]:
        for n in (24, 96, 700):
            assert sel.predict(d, n) == pytest.approx(
                true_multiplier(d, n), abs=0.06
            )


def test_selector_beats_default_policy(rng):
    """The companion paper's payoff: learned decompositions beat defaults."""
    samples = collect_training_data(ICE_MODEL, TRAIN_NODES, rng, noise=0.02)
    sel = DecompositionSelector(k=3).fit(samples)
    probe_nodes = (12, 48, 200, 800, 1500)
    ml_mult = np.array([true_multiplier(sel.best(n), n) for n in probe_nodes])
    default_mult = np.array(
        [true_multiplier(default_decomposition(n), n) for n in probe_nodes]
    )
    oracle_mult = np.array([true_multiplier(oracle_best(n), n) for n in probe_nodes])
    # ML no worse than default on average, near the oracle.
    assert ml_mult.mean() <= default_mult.mean()
    assert ml_mult.mean() <= oracle_mult.mean() + 0.03


def test_selector_reduces_scaling_curve_noise(rng):
    """§IV-A's complaint, fixed: fitting the ice curve from ML-selected
    decompositions yields a cleaner fit than from default-policy runs."""
    from repro.perf.fitting import fit_performance_model

    samples = collect_training_data(ICE_MODEL, TRAIN_NODES, rng, noise=0.01)
    sel = DecompositionSelector(k=3).fit(samples)
    nodes = np.array([10.0, 30.0, 90.0, 270.0, 810.0, 2430.0])
    rng_a, rng_b = default_rng(5), default_rng(5)
    y_default = np.array(
        [
            sample_ice_time(ICE_MODEL, default_decomposition(int(n)), int(n), rng_a)
            for n in nodes
        ]
    )
    y_ml = np.array(
        [
            sample_ice_time(ICE_MODEL, sel.best(int(n)), int(n), rng_b)
            for n in nodes
        ]
    )
    # Decomposition "noise" is multiplicative, so judge the curves by the
    # scatter of their multipliers (time / clean curve), not absolute RSS.
    base = ICE_MODEL.time(nodes)
    mult_default = y_default / base
    mult_ml = y_ml / base
    assert mult_ml.std() < mult_default.std()
    # And the ML curve is simply faster at every probed size.
    assert np.all(y_ml < y_default)


# --- simulator integration ----------------------------------------------------


def test_simulator_ice_policy_validation():
    from repro.cesm.grids import one_degree
    from repro.cesm.simulator import CESMSimulator

    with pytest.raises(TypeError, match="ice_policy"):
        CESMSimulator(one_degree(), ice_policy="random")


def test_simulator_ml_policy_beats_default_policy():
    """End to end: the learned ice decompositions make the coupled run's ice
    times faster and steadier than the CESM default rule."""
    from repro.cesm.grids import one_degree
    from repro.cesm.simulator import CESMSimulator
    from repro.core.spec import Allocation

    rng = default_rng(12345)
    samples = collect_training_data(ICE_MODEL, TRAIN_NODES, rng, noise=0.02)
    selector = DecompositionSelector(k=3).fit(samples)

    alloc = Allocation({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
    sim_default = CESMSimulator(one_degree(), ice_policy="default")
    sim_ml = CESMSimulator(one_degree(), ice_policy=selector)
    times_default = [
        sim_default.execute(alloc, default_rng(s)).component_times["ice"]
        for s in range(8)
    ]
    times_ml = [
        sim_ml.execute(alloc, default_rng(s)).component_times["ice"]
        for s in range(8)
    ]
    assert np.mean(times_ml) < np.mean(times_default)
    # Other components are untouched by the policy.
    a = sim_default.execute(alloc, default_rng(0)).component_times["atm"]
    b = sim_ml.execute(alloc, default_rng(0)).component_times["atm"]
    assert a == b
