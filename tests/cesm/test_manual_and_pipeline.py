"""Manual-baseline tests and the full HSLB-on-CESM integration test."""

import pytest

from repro.cesm.app import CESMApplication
from repro.cesm.grids import eighth_degree, one_degree
from repro.cesm.layouts import Layout
from repro.cesm.manual import manual_optimization
from repro.cesm.simulator import CESMSimulator
from repro.core.hslb import HSLBConfig, HSLBOptimizer
from repro.core.report import allocation_table, comparison_table, speedup_summary
from repro.minlp.solution import Status
from repro.util.rng import default_rng


def test_manual_optimization_produces_valid_layout(rng):
    sim = CESMSimulator(one_degree())
    res = manual_optimization(sim, 128, rng)
    sim.validate_allocation(res.allocation)
    assert res.allocation["atm"] + res.allocation["ocn"] <= 128
    assert 1 <= res.executions_burned <= 8
    assert res.candidates_tried >= 1
    assert res.execution.total_time > 0


def test_manual_optimization_iteration_budget(rng):
    sim = CESMSimulator(one_degree())
    res = manual_optimization(sim, 512, rng, max_iterations=3)
    assert res.executions_burned <= 3


def test_manual_requires_layout1(rng):
    sim = CESMSimulator(one_degree(), layout=Layout.FULLY_SEQUENTIAL)
    with pytest.raises(ValueError, match="layout 1"):
        manual_optimization(sim, 128, rng)


def test_manual_result_close_to_paper_at_128(rng):
    """Paper Table III: manual total at 1deg/128 was 416 s; the emulated
    expert should land in that neighbourhood (not wildly better/worse)."""
    sim = CESMSimulator(one_degree())
    res = manual_optimization(sim, 128, rng)
    assert 350 <= res.execution.total_time <= 520


# --- full pipeline integration ----------------------------------------------


def test_hslb_pipeline_1deg_128(rng):
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    result = opt.run([32, 64, 128, 512, 2048], 128, rng)
    assert result.solution.status is Status.OPTIMAL
    # Shape assertions mirroring Table III block 1:
    assert result.allocation["atm"] + result.allocation["ocn"] <= 128
    assert 380 <= result.predicted_total <= 450   # paper: 410.6
    assert 380 <= result.actual_total <= 460      # paper: 425.2
    # Prediction error small (paper: |411-425|/425 ~ 3.4%).
    assert result.prediction_error < 0.10
    # R^2 "very close to 1 for each component".
    for name, fit in result.fits.items():
        assert fit.r_squared > 0.97, name


def test_hslb_beats_or_matches_manual_1deg_128():
    rng = default_rng(11)
    app = CESMApplication(one_degree())
    manual = manual_optimization(app.simulator, 128, default_rng(12))
    result = HSLBOptimizer(app).run([32, 64, 128, 512, 2048], 128, rng)
    # HSLB should be at least competitive with the expert (within noise).
    assert result.actual_total <= manual.execution.total_time * 1.05


def test_hslb_pipeline_eighth_8192(rng):
    app = CESMApplication(eighth_degree())
    opt = HSLBOptimizer(app)
    result = opt.run([2048, 4096, 8192, 16384, 32768], 8192, rng)
    assert result.solution.status is Status.OPTIMAL
    # Ocean forced onto the hard-coded list (<= 8192 -> max 6124).
    assert result.allocation["ocn"] in (480, 512, 2356, 3136, 4564, 6124)
    # Paper: predicted 3390, actual 3489.
    assert 3000 <= result.predicted_total <= 3800
    assert 3000 <= result.actual_total <= 3900


def test_unconstrained_ocean_improves_32768():
    """The §IV-B headline: dropping the ocean constraint cuts ~25% at 32768."""
    bench = [2048, 4096, 8192, 16384, 32768]
    con = HSLBOptimizer(CESMApplication(eighth_degree())).run(
        bench, 32768, default_rng(5)
    )
    unc = HSLBOptimizer(CESMApplication(eighth_degree(constrained_ocean=False))).run(
        bench, 32768, default_rng(5)
    )
    assert unc.predicted_total < con.predicted_total * 0.85
    assert unc.actual_total < con.actual_total * 0.88
    assert unc.allocation["ocn"] not in (480, 512, 2356, 3136, 4564, 6124, 19460)


def test_pipeline_steps_reusable(rng):
    """Gather once, reuse fits across machine sizes (§III-F note)."""
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    suite = opt.gather([32, 64, 128, 512, 2048], rng)
    fits = opt.fit(suite, rng)
    r128 = opt.run_from_fits(fits, 128, rng, execute=False)
    r512 = opt.run_from_fits(fits, 512, rng, execute=False)
    assert r128.execution is None
    assert r512.predicted_total < r128.predicted_total


def test_gather_needs_two_counts(rng):
    opt = HSLBOptimizer(CESMApplication(one_degree()))
    with pytest.raises(ValueError, match="two"):
        opt.gather([128], rng)


def test_fit_missing_component_rejected(rng):
    from repro.perf.data import BenchmarkSuite, ComponentBenchmark

    opt = HSLBOptimizer(CESMApplication(one_degree()))
    partial = BenchmarkSuite(
        [ComponentBenchmark.from_pairs("atm", [(10, 5.0), (20, 3.0)])]
    )
    with pytest.raises(ValueError, match="missing components"):
        opt.fit(partial, rng)


def test_bad_config_algorithm():
    with pytest.raises(ValueError, match="algorithm"):
        HSLBConfig(algorithm="genetic")


def test_reports_render(rng):
    app = CESMApplication(one_degree())
    result = HSLBOptimizer(app).run([32, 64, 128, 512], 128, rng)
    manual = manual_optimization(app.simulator, 128, rng)
    table = allocation_table(result, title="1deg/128")
    assert "TOTAL" in table and "atm" in table
    comp = comparison_table(manual.allocation, manual.execution, result)
    assert "manual" in comp.splitlines()[0]
    summary = speedup_summary(manual.execution, result)
    assert summary["manual_total"] > 0
    assert "improvement_pct" in summary
