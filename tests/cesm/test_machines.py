"""Tests for the new-hardware what-if transformation (§IV-C)."""

import pytest

from repro.cesm.machines import (
    EXASCALE_SKETCH,
    INTREPID,
    MachineProfile,
    amdahl_ceiling,
)
from repro.perf.model import PerformanceModel

MODEL = PerformanceModel(a=27380.0, b=1e-3, c=1.0, d=43.0)


def test_profile_validation():
    with pytest.raises(ValueError):
        MachineProfile("x", compute_speedup=0.0)
    with pytest.raises(ValueError):
        MachineProfile("x", nodes=0)


def test_identity_transform():
    out = INTREPID.transform(MODEL)
    assert out == MODEL


def test_transform_scales_each_term():
    m = MachineProfile("m", compute_speedup=10.0, network_speedup=2.0, serial_speedup=5.0)
    out = m.transform(MODEL)
    assert out.a == pytest.approx(MODEL.a / 10.0)
    assert out.b == pytest.approx(MODEL.b / 2.0)
    assert out.c == MODEL.c
    assert out.d == pytest.approx(MODEL.d / 5.0)
    # Faster machine, faster everywhere.
    for n in (16, 256, 4096):
        assert out.time(n) < MODEL.time(n)


def test_transform_all():
    models = {"atm": MODEL, "ocn": PerformanceModel(a=7550.0, d=45.0)}
    out = EXASCALE_SKETCH.transform_all(models)
    assert set(out) == {"atm", "ocn"}
    assert out["atm"].a == pytest.approx(MODEL.a / EXASCALE_SKETCH.compute_speedup)


def test_amdahl_ceiling_shrinks_when_compute_outruns_serial():
    base_ceiling = amdahl_ceiling(MODEL)
    new_ceiling = amdahl_ceiling(EXASCALE_SKETCH.transform(MODEL))
    # The ceiling is T(1)/d.  T(1) is compute-dominated, so it shrinks by
    # ~compute_speedup while d only shrinks by serial_speedup: the new
    # machine has LESS parallel headroom (you start closer to the serial
    # wall) by roughly serial/compute — the §IV-C reliability caveat made
    # quantitative.
    ratio = new_ceiling / base_ceiling
    expected = EXASCALE_SKETCH.serial_speedup / EXASCALE_SKETCH.compute_speedup
    assert ratio == pytest.approx(expected, rel=0.10)
    assert new_ceiling < base_ceiling


def test_amdahl_ceiling_infinite_without_floor():
    assert amdahl_ceiling(PerformanceModel(a=10.0, d=0.0)) == float("inf")
