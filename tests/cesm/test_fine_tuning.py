"""Tests for the fine-tuning extension: RTM and CPL7 join the model (§II/§V).

The paper excludes the river model and the coupler "because the contribution
to the total time is small, but they can be added later for fine tuning the
work load balance" — this extension does exactly that: rtm rides the land
nodes, cpl the atmosphere nodes, both appear in the benchmark data, the fits,
the MINLP, and the makespan.
"""

import pytest

from repro.cesm.app import CESMApplication
from repro.cesm.components import one_degree_minor_ground_truth
from repro.cesm.grids import one_degree
from repro.cesm.layouts import MINOR_HOSTS, Layout, layout_total_time
from repro.cesm.simulator import CESMSimulator
from repro.core.hslb import HSLBOptimizer
from repro.core.spec import Allocation
from repro.util.rng import default_rng

ALLOC = Allocation({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
CAMPAIGN = [32, 64, 128, 512, 2048]


def test_minor_hosts_mapping():
    assert MINOR_HOSTS == {"rtm": "lnd", "cpl": "atm"}


def test_minor_ground_truth_is_small():
    minors = one_degree_minor_ground_truth()
    # "take less time to run compared to the other components": a few
    # percent of the 1deg/128 makespan (~420 s) at typical node counts.
    assert minors["rtm"].true_time(24) < 0.05 * 420
    assert minors["cpl"].true_time(104) < 0.05 * 420


def test_simulator_requires_calibration_for_minor_mode():
    from dataclasses import replace

    cfg = replace(one_degree(), minor_ground_truth={})
    with pytest.raises(ValueError, match="no minor-component calibration"):
        CESMSimulator(cfg, include_minor=True)


def test_layout_total_time_extends_with_minors():
    times = {"ice": 5.0, "lnd": 3.0, "atm": 20.0, "ocn": 24.0}
    base = layout_total_time(Layout.HYBRID, times)
    extended = layout_total_time(
        Layout.HYBRID, {**times, "rtm": 4.0, "cpl": 2.0}
    )
    # lnd+rtm = 7 > ice = 5; makespan = 7 + 20 + 2 = 29 > max(5+20, 24) = 25.
    assert base == 25.0
    assert extended == 29.0


def test_execute_minor_mode_reports_six_components(rng):
    sim = CESMSimulator(one_degree(), include_minor=True)
    result = sim.execute(ALLOC, rng)
    assert set(result.component_times) == {"lnd", "ice", "atm", "ocn", "rtm", "cpl"}
    assert result.total_time == pytest.approx(
        layout_total_time(Layout.HYBRID, result.component_times)
    )
    # Minor mode total >= base mode total for the same allocation/seed.
    base = CESMSimulator(one_degree()).execute(ALLOC, default_rng(5))
    extended = CESMSimulator(one_degree(), include_minor=True).execute(
        ALLOC, default_rng(5)
    )
    assert extended.total_time >= base.total_time


def test_benchmark_minor_mode_records_minor_curves(rng):
    sim = CESMSimulator(one_degree(), include_minor=True)
    suite = sim.benchmark([64, 128, 512], rng, probe_extremes=False)
    assert {"rtm", "cpl"} <= set(suite.components)
    # rtm is keyed by the LAND node counts of the runs.
    lnd_nodes = set(int(n) for n in suite["lnd"].nodes)
    rtm_nodes = set(int(n) for n in suite["rtm"].nodes)
    assert rtm_nodes == lnd_nodes


def test_full_pipeline_fine_tuning(rng):
    app = CESMApplication(one_degree(), include_minor_components=True)
    assert app.component_names == ("lnd", "ice", "atm", "ocn", "rtm", "cpl")
    result = HSLBOptimizer(app).run(CAMPAIGN, 128, rng)
    assert {"rtm", "cpl"} <= set(result.predicted_times)
    assert {"rtm", "cpl"} <= set(result.fits)
    # Minor fits are good too.
    assert result.fits["cpl"].r_squared > 0.95
    # Prediction still tracks execution.
    assert result.prediction_error < 0.10


def test_fine_tuning_total_exceeds_base_model():
    """The 6-component model predicts a (slightly) larger makespan than the
    4-component model — the few percent the paper chose to ignore."""
    rng_a, rng_b = default_rng(42), default_rng(42)
    base = HSLBOptimizer(CESMApplication(one_degree())).run(CAMPAIGN, 128, rng_a)
    fine = HSLBOptimizer(
        CESMApplication(one_degree(), include_minor_components=True)
    ).run(CAMPAIGN, 128, rng_b)
    assert fine.predicted_total > base.predicted_total
    assert fine.predicted_total < base.predicted_total * 1.10  # "small"


def test_formulate_rejects_unknown_minor():
    from repro.cesm.layouts import formulate_layout
    from repro.perf.model import PerformanceModel

    models = {
        c: PerformanceModel(a=100.0, d=1.0) for c in ("lnd", "ice", "atm", "ocn")
    }
    with pytest.raises(ValueError, match="unknown minor"):
        formulate_layout(
            models, 64, one_degree(),
            minor_models={"esp": PerformanceModel(a=1.0)},
        )
