"""Tests for CESM configurations and admissible node sets."""

import pytest

from repro.cesm.grids import (
    EIGHTH_DEGREE_OCEAN_SPOTS,
    INTREPID_NODES,
    eighth_degree,
    one_degree,
)
from repro.core.builder import DiscreteNodeSet


def test_intrepid_size_matches_paper():
    # "40,960 quad-core processors" (§I) used as nodes.
    assert INTREPID_NODES == 40960


def test_one_degree_ocean_set_shape():
    cfg = one_degree()
    values = cfg.ocean_allowed.values
    assert values[0] == 2
    assert 480 in values
    assert 768 in values
    assert values[-1] == 768
    assert all(v % 2 == 0 for v in values)
    # {2,4,...,480} has 240 members, plus 768.
    assert len(values) == 241


def test_one_degree_atm_set_shape():
    cfg = one_degree()
    a = cfg.atm_allowed
    assert 1 in a and 1638 in a and 1664 in a
    assert 1650 not in a
    assert len(a) == 1639
    # Exactly two runs: [1,1638] and [1664,1664].
    assert a.runs() == [(1, 1638), (1664, 1664)]


def test_eighth_degree_constrained_ocean():
    cfg = eighth_degree()
    assert cfg.ocean_allowed.values == tuple(sorted(EIGHTH_DEGREE_OCEAN_SPOTS))
    assert cfg.ocean_values_upto(8192) == (480, 512, 2356, 3136, 4564, 6124)


def test_eighth_degree_unconstrained_ocean():
    cfg = eighth_degree(constrained_ocean=False)
    assert cfg.ocean_allowed is None
    vals = cfg.ocean_values_upto(1000)
    assert vals[0] == cfg.component_min_nodes("ocn")
    assert vals[-1] == 1000


def test_min_nodes_defaults():
    cfg = one_degree()
    assert cfg.component_min_nodes("ocn") == 2
    assert cfg.component_min_nodes("lnd") == 1


# --- DiscreteNodeSet itself -------------------------------------------------


def test_discrete_set_sorted_dedup():
    s = DiscreteNodeSet((4, 2, 4, 8))
    assert s.values == (2, 4, 8)
    assert s.min == 2 and s.max == 8
    assert len(s) == 3


def test_discrete_set_validation():
    with pytest.raises(ValueError):
        DiscreteNodeSet(())
    with pytest.raises(ValueError):
        DiscreteNodeSet((0, 1))


def test_runs_decomposition():
    s = DiscreteNodeSet((1, 2, 3, 7, 8, 12))
    assert s.runs() == [(1, 3), (7, 8), (12, 12)]


def test_runs_single_contiguous():
    assert DiscreteNodeSet.contiguous(5, 9).runs() == [(5, 9)]


def test_even_range_runs_are_singletons():
    s = DiscreteNodeSet.even_range(2, 10)
    assert s.runs() == [(2, 2), (4, 4), (6, 6), (8, 8), (10, 10)]


def test_nearest_and_below():
    s = DiscreteNodeSet((4, 16, 64))
    assert s.nearest(20) == 16
    assert s.nearest(40) == 16  # tie 16/64? |40-16|=24,|40-64|=24 -> smaller
    assert s.below(60) == 16
    assert s.below(3) == 4  # nothing below: smallest member
    assert s.below(64) == 64


def test_contains():
    s = DiscreteNodeSet.even_range(2, 8)
    assert 4 in s and 5 not in s
