"""Tests for the §III-C benchmark-campaign planner."""

import pytest

from repro.cesm.app import CESMApplication
from repro.cesm.campaign import MEMORY_MODELS, MemoryModel, plan_campaign
from repro.cesm.grids import eighth_degree, one_degree
from repro.core.hslb import HSLBOptimizer
from repro.util.rng import default_rng


def test_memory_model_floor():
    m = MemoryModel(resident_gb=48.0, replicated_gb=0.25)
    # 48 / (2 - 0.25) = 27.4 -> 28 nodes.
    assert m.min_nodes() == 28
    assert m.min_nodes(node_memory_gb=8.0) == 7
    with pytest.raises(ValueError, match="exceeds node memory"):
        MemoryModel(resident_gb=1.0, replicated_gb=4.0).min_nodes()


def test_memory_model_validation():
    with pytest.raises(ValueError):
        MemoryModel(resident_gb=0.0)


def test_plan_campaign_brackets_range():
    cfg = one_degree()
    counts = plan_campaign(cfg, max_nodes=2048)
    assert len(counts) >= 5
    assert counts[0] == MEMORY_MODELS["1deg"].min_nodes()
    assert counts[-1] == 2048
    # Geometric spacing: ratios between consecutive points are similar.
    ratios = [counts[i + 1] / counts[i] for i in range(len(counts) - 1)]
    assert max(ratios) / min(ratios) < 4.0


def test_plan_campaign_eighth_floor_is_large():
    counts = plan_campaign(eighth_degree(), max_nodes=32768)
    assert counts[0] >= 1000  # 1/8 degree cannot run on a handful of nodes
    assert counts[-1] == 32768


def test_plan_campaign_validation():
    with pytest.raises(ValueError, match="at least 5"):
        plan_campaign(one_degree(), points=3)
    with pytest.raises(ValueError, match="memory floor"):
        plan_campaign(one_degree(), max_nodes=4)


def test_plan_campaign_more_points():
    counts = plan_campaign(one_degree(), max_nodes=2048, points=8)
    assert len(counts) >= 8
    assert counts == tuple(sorted(set(counts)))


def test_planned_campaign_drives_pipeline():
    """The planned counts feed straight into gather/fit/solve."""
    cfg = one_degree()
    counts = plan_campaign(cfg, max_nodes=2048)
    app = CESMApplication(cfg)
    result = HSLBOptimizer(app).run(list(counts), 128, default_rng(8))
    assert result.solution.status.is_ok
    for fit in result.fits.values():
        assert fit.r_squared > 0.97
    # Interpolation guaranteed: target inside the campaign bracket.
    assert counts[0] <= 128 <= counts[-1]
