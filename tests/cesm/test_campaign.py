"""Tests for the §III-C benchmark-campaign planner."""

import pytest

from repro.cesm.app import CESMApplication
from repro.cesm.campaign import (
    MEMORY_MODELS,
    MemoryModel,
    plan_campaign,
    replacement_counts,
)
from repro.cesm.grids import eighth_degree, one_degree
from repro.core.hslb import HSLBOptimizer
from repro.util.rng import default_rng


def test_memory_model_floor():
    m = MemoryModel(resident_gb=48.0, replicated_gb=0.25)
    # 48 / (2 - 0.25) = 27.4 -> 28 nodes.
    assert m.min_nodes() == 28
    assert m.min_nodes(node_memory_gb=8.0) == 7
    with pytest.raises(ValueError, match="exceeds node memory"):
        MemoryModel(resident_gb=1.0, replicated_gb=4.0).min_nodes()


def test_memory_model_validation():
    with pytest.raises(ValueError):
        MemoryModel(resident_gb=0.0)


def test_plan_campaign_brackets_range():
    cfg = one_degree()
    counts = plan_campaign(cfg, max_nodes=2048)
    assert len(counts) >= 5
    assert counts[0] == MEMORY_MODELS["1deg"].min_nodes()
    assert counts[-1] == 2048
    # Geometric spacing: ratios between consecutive points are similar.
    ratios = [counts[i + 1] / counts[i] for i in range(len(counts) - 1)]
    assert max(ratios) / min(ratios) < 4.0


def test_plan_campaign_eighth_floor_is_large():
    counts = plan_campaign(eighth_degree(), max_nodes=32768)
    assert counts[0] >= 1000  # 1/8 degree cannot run on a handful of nodes
    assert counts[-1] == 32768


def test_plan_campaign_validation():
    with pytest.raises(ValueError, match="at least 5"):
        plan_campaign(one_degree(), points=3)
    with pytest.raises(ValueError, match="memory floor"):
        plan_campaign(one_degree(), max_nodes=4)


def test_plan_campaign_more_points():
    counts = plan_campaign(one_degree(), max_nodes=2048, points=8)
    assert len(counts) >= 8
    assert counts == tuple(sorted(set(counts)))


def test_planned_campaign_drives_pipeline():
    """The planned counts feed straight into gather/fit/solve."""
    cfg = one_degree()
    counts = plan_campaign(cfg, max_nodes=2048)
    app = CESMApplication(cfg)
    result = HSLBOptimizer(app).run(list(counts), 128, default_rng(8))
    assert result.solution.status.is_ok
    for fit in result.fits.values():
        assert fit.r_squared > 0.97
    # Interpolation guaranteed: target inside the campaign bracket.
    assert counts[0] <= 128 <= counts[-1]


def test_replacement_counts_fill_the_widest_gap():
    # Dropping 64 leaves a 16..256 gap; the geometric midpoint (64) was
    # already tried, so the proposal splits the gap elsewhere.
    fresh = replacement_counts([16, 64, 256, 512], [64])
    assert len(fresh) == 1
    (cand,) = fresh
    assert 16 < cand < 256 and cand != 64
    # Replacements never repeat a planned (even dead) count.
    assert cand not in {16, 64, 256, 512}


def test_replacement_counts_restore_campaign_size():
    planned = [16, 32, 64, 128, 256]
    dropped = [32, 128]
    fresh = replacement_counts(planned, dropped)
    surviving = sorted(set(planned) - set(dropped))
    assert len(surviving) + len(fresh) == len(planned)
    assert fresh == tuple(sorted(fresh))
    for cand in fresh:
        assert surviving[0] < cand < surviving[-1]
        assert cand not in planned


def test_replacement_counts_nothing_dropped():
    assert replacement_counts([16, 64, 256], []) == ()


def test_replacement_counts_requires_two_survivors():
    with pytest.raises(ValueError, match="re-plan the whole campaign"):
        replacement_counts([16, 64], [16, 64])
    with pytest.raises(ValueError, match="re-plan the whole campaign"):
        replacement_counts([16, 64], [64])


def test_replacement_counts_saturated_gaps_stop_early():
    # Adjacent integers leave no fresh midpoint to propose.
    assert replacement_counts([4, 5, 6], [5]) == ()


def test_replacement_counts_extra_points():
    fresh = replacement_counts([16, 256], [], points=4)
    assert len(fresh) == 2
    assert all(16 < c < 256 for c in fresh)
