"""ChaosPlan: seeded, keyed, replayable serving-tier fault draws."""

from __future__ import annotations

import pytest

from repro.faults import ChaosPlan, chaotic_solve
from repro.faults.chaos import KINDS, corrupt_outcome
from repro.service import WorkerCrashError, WorkerHangError
from repro.service.solver import solve_request, validate_outcome
from tests.service.conftest import make_request

PLAN = ChaosPlan(
    seed=7, crash_rate=0.2, hang_rate=0.1, slow_rate=0.1, corrupt_rate=0.1
)


def test_draws_are_keyed_not_ordered():
    a = [PLAN.fault(f"fp{i}", 0) for i in range(50)]
    b = [PLAN.fault(f"fp{i}", 0) for i in reversed(range(50))]
    assert a == list(reversed(b))


def test_same_seed_same_faults_different_seed_differs():
    twin = ChaosPlan(
        seed=7, crash_rate=0.2, hang_rate=0.1, slow_rate=0.1, corrupt_rate=0.1
    )
    other = ChaosPlan(
        seed=8, crash_rate=0.2, hang_rate=0.1, slow_rate=0.1, corrupt_rate=0.1
    )
    draws = [(f"fp{i}", a) for i in range(30) for a in range(3)]
    assert [PLAN.fault(*d) for d in draws] == [twin.fault(*d) for d in draws]
    assert [PLAN.fault(*d) for d in draws] != [other.fault(*d) for d in draws]


def test_rates_govern_the_long_run_mix():
    draws = [PLAN.fault(f"fp{i}", 0) for i in range(2000)]
    for kind, rate in zip(KINDS, (0.2, 0.1, 0.1, 0.1)):
        frac = draws.count(kind) / len(draws)
        assert rate * 0.6 < frac < rate * 1.5, (kind, frac)
    assert draws.count(None) / len(draws) > 0.35


def test_immune_after_clears_later_attempts():
    plan = ChaosPlan(seed=7, crash_rate=0.9, immune_after=2)
    assert all(plan.fault(f"fp{i}", 2) is None for i in range(100))
    assert all(plan.fault(f"fp{i}", 5) is None for i in range(100))
    assert any(plan.fault(f"fp{i}", 0) for i in range(100))


def test_inactive_plan_never_fires():
    assert ChaosPlan(seed=1).fault("fp", 0) is None
    assert not ChaosPlan(seed=1).active
    assert PLAN.active


def test_round_trip_wire_format():
    assert ChaosPlan.from_dict(PLAN.to_dict()) == PLAN
    plan = ChaosPlan(seed=3, crash_rate=0.5, immune_after=1)
    assert ChaosPlan.from_dict(plan.to_dict()) == plan


@pytest.mark.parametrize(
    "kwargs",
    [
        {"crash_rate": 1.0},
        {"crash_rate": -0.1},
        {"crash_rate": 0.5, "hang_rate": 0.5},
        {"immune_after": 0},
        {"hang_seconds": 0.0},
        {"slow_seconds": -1.0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        ChaosPlan(seed=0, **kwargs)


def test_corrupt_outcome_fails_validation():
    request = make_request(48)
    outcome = solve_request(request)
    assert validate_outcome(request, outcome) is None
    assert validate_outcome(request, corrupt_outcome(outcome)) is not None


def test_chaotic_solve_raises_typed_worker_errors():
    request = make_request(48)
    fingerprint = request.fingerprint()
    crash = ChaosPlan(seed=0, crash_rate=0.999)
    with pytest.raises(WorkerCrashError) as err:
        chaotic_solve(crash, solve_request)(request)
    assert err.value.fingerprint == fingerprint
    hang = ChaosPlan(seed=0, hang_rate=0.999)
    with pytest.raises(WorkerHangError):
        chaotic_solve(hang, solve_request)(request)


def test_chaotic_solve_clean_path_matches_base():
    request = make_request(48)
    clean = chaotic_solve(ChaosPlan(seed=0), solve_request)(request).to_dict()
    base = solve_request(request).to_dict()
    clean.pop("wall_time"), base.pop("wall_time")  # real time, not comparable
    assert clean == base


def test_describe_names_the_active_rates():
    text = PLAN.describe()
    assert "seed=7" in text and "crash=20%" in text
