"""Tests for the deterministic fault plan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    BenchmarkFault,
    BenchmarkRunError,
    FaultInjectionError,
    FaultPlan,
    NodeCrashError,
)


def test_validation_rejects_bad_rates():
    with pytest.raises(ValueError, match="fail_rate"):
        FaultPlan(fail_rate=1.0)
    with pytest.raises(ValueError, match="fail_rate"):
        FaultPlan(fail_rate=-0.1)
    with pytest.raises(ValueError, match="must be < 1"):
        FaultPlan(fail_rate=0.6, timeout_rate=0.5)
    with pytest.raises(ValueError, match="straggler_scale"):
        FaultPlan(straggler_rate=0.1, straggler_scale=1.0)
    with pytest.raises(ValueError, match="crash_fraction"):
        FaultPlan(crash_component="ocn", crash_fraction=1.0)
    with pytest.raises(ValueError, match="solver tier"):
        FaultPlan(solver_stall=("simplex",))
    with pytest.raises(ValueError, match="not both"):
        FaultPlan(crash_component="ocn", crash_group=1)


def test_fault_kind_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        BenchmarkFault("meltdown", "cesm", 64, 0)


def test_recoverable_property():
    assert BenchmarkFault("failure", "cesm", 64, 0).recoverable
    assert BenchmarkFault("timeout", "cesm", 64, 0).recoverable
    assert not BenchmarkFault("permanent", "cesm", 64, 0).recoverable


def test_exception_hierarchy():
    fault = BenchmarkFault("failure", "cesm", 64, 1)
    err = BenchmarkRunError(fault)
    assert isinstance(err, FaultInjectionError)
    assert err.fault is fault
    assert "64 nodes" in str(err)
    crash = NodeCrashError(component="ocn", lost_nodes=22, fraction=0.5)
    assert isinstance(crash, FaultInjectionError)
    assert "ocn" in str(crash) and "50%" in str(crash)


def test_check_benchmark_raises_and_passes():
    plan = FaultPlan(seed=3, fail_rate=0.5)
    hit = [n for n in range(1, 200) if plan.benchmark_fault("cesm", n, 0)]
    clean = [n for n in range(1, 200) if not plan.benchmark_fault("cesm", n, 0)]
    assert hit and clean  # a 50% rate must produce both
    with pytest.raises(BenchmarkRunError):
        plan.check_benchmark("cesm", hit[0], 0)
    plan.check_benchmark("cesm", clean[0], 0)  # no raise


def test_fail_rate_is_roughly_respected():
    plan = FaultPlan(seed=1, fail_rate=0.3)
    hits = sum(
        plan.benchmark_fault("cesm", n, 0) is not None for n in range(1, 1001)
    )
    assert 0.2 < hits / 1000 < 0.4


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    nodes=st.lists(st.integers(1, 10_000), min_size=1, max_size=8, unique=True),
    attempts=st.lists(st.integers(0, 4), min_size=1, max_size=5, unique=True),
)
def test_same_seed_injects_identical_faults(seed, nodes, attempts):
    """The headline determinism property: faults are keyed by event identity,
    never by call order, so two same-seed plans agree on every query no
    matter how the queries are interleaved."""
    a = FaultPlan(seed=seed, fail_rate=0.3, timeout_rate=0.2, straggler_rate=0.3)
    b = FaultPlan(seed=seed, fail_rate=0.3, timeout_rate=0.2, straggler_rate=0.3)
    forward = [
        (a.benchmark_fault("x", n, k), a.straggler_multiplier("x", "u", n, k))
        for n in nodes
        for k in attempts
    ]
    backward = [
        (b.benchmark_fault("x", n, k), b.straggler_multiplier("x", "u", n, k))
        for n in reversed(nodes)
        for k in reversed(attempts)
    ]
    assert forward == list(reversed(backward))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), nodes=st.integers(1, 10_000))
def test_different_scopes_are_independent_streams(seed, nodes):
    plan = FaultPlan(seed=seed, straggler_rate=0.99)
    # Same unit/nodes under different scopes must not be forced to agree;
    # equality of the full 200-point profile would mean the scope is ignored.
    cesm = [plan.straggler_multiplier("cesm", i, nodes) for i in range(200)]
    fmo = [plan.straggler_multiplier("fmo", i, nodes) for i in range(200)]
    assert cesm != fmo


def test_permanent_faults_are_attempt_independent():
    plan = FaultPlan(seed=9, permanent_rate=0.4)
    dead = [
        n
        for n in range(1, 200)
        if (f := plan.benchmark_fault("cesm", n, 0)) and f.kind == "permanent"
    ]
    assert dead
    for n in dead[:10]:
        for attempt in range(5):
            fault = plan.benchmark_fault("cesm", n, attempt)
            assert fault is not None and fault.kind == "permanent"


def test_transient_failures_can_clear_on_retry():
    plan = FaultPlan(seed=5, fail_rate=0.5)
    recovered = any(
        plan.benchmark_fault("cesm", n, 0) is not None
        and plan.benchmark_fault("cesm", n, 1) is None
        for n in range(1, 100)
    )
    assert recovered


def test_straggler_multiplier_bounds():
    plan = FaultPlan(seed=2, straggler_rate=0.5, straggler_scale=4.0)
    mults = [plan.straggler_multiplier("fmo", i, 8) for i in range(500)]
    slowed = [m for m in mults if m != 1.0]
    assert slowed, "50% straggler rate must inflate some timings"
    assert all(1.5 <= m <= 4.0 for m in slowed)
    # Keyed draws: asking twice gives the same answer.
    assert mults == [plan.straggler_multiplier("fmo", i, 8) for i in range(500)]


def test_zero_rate_plan_is_silent():
    plan = FaultPlan(seed=123)
    assert plan.benchmark_fault("cesm", 64, 0) is None
    assert plan.straggler_multiplier("cesm", "atm", 64) == 1.0
    assert not plan.solver_fails("oa")
    assert not plan.has_crash


def test_solver_stall_and_crash_flags():
    plan = FaultPlan(solver_stall=("oa",), crash_group=2, crash_fraction=0.3)
    assert plan.solver_fails("oa") and not plan.solver_fails("nlpbb")
    assert plan.has_crash
    assert FaultPlan(crash_component="ocn").has_crash


def test_describe_echoes_the_knobs():
    text = FaultPlan(
        seed=7, fail_rate=0.1, straggler_rate=0.05, crash_component="ocn"
    ).describe()
    assert "seed=7" in text
    assert "fail=10%" in text
    assert "crash=ocn@50%" in text
    assert "timeout" not in text  # silent knobs stay out of the echo
    grp = FaultPlan(crash_group=1, solver_stall=("oa", "nlpbb")).describe()
    assert "crash=group1@50%" in grp and "solver_stall=oa,nlpbb" in grp
