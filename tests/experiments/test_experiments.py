"""Shape tests for the experiment runners (the paper's claims as asserts).

These are the library's reproduction contract: each test pins the
qualitative result the corresponding table/figure reports.  Absolute
seconds are synthetic; who-wins and by-roughly-what-factor are asserted.
"""

import pytest

from repro.cesm.layouts import Layout
from repro.core.objectives import Objective
from repro.experiments.ablations import (
    run_objective_ablation,
    run_tsync_ablation,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig4 import run_fig4
from repro.experiments.fmo_experiments import (
    run_fmo_comparison,
    run_fmo_pipeline,
    run_fmo_speedup,
)
from repro.experiments.paper_data import TABLE3
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.table3 import manual_baseline_for, run_table3_block


def test_registry_complete():
    expected = {
        "table3-1deg-128",
        "table3-1deg-2048",
        "table3-eighth-8192",
        "table3-eighth-32768",
        "table3-eighth-8192-freeocn",
        "table3-eighth-32768-freeocn",
        "fig2",
        "fig3",
        "fig4",
        "ablation-objectives",
        "ablation-sos",
        "ablation-tsync",
        "solver-scaling",
        "fmo-comparison",
        "fmo-pipeline",
        "fmo-speedup",
    }
    assert expected <= set(EXPERIMENTS)
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("table9")


def test_paper_data_consistency():
    """Sanity: the transcribed Table III blocks are internally coherent."""
    for key, block in TABLE3.items():
        assert block.hslb_pred_total >= max(block.hslb_pred_times.values()) - 1e-6
        assert block.hslb_actual_total >= max(block.hslb_actual_times.values()) - 1e-6
        if block.manual_total is not None:
            assert block.manual_total >= max(block.manual_times.values()) - 1e-6
        assert manual_baseline_for(block) is not None


def test_table3_1deg_128_shape():
    r = run_table3_block("1deg-128")
    paper = r.paper
    # Totals land near the paper's (synthetic machine: +-10%).
    assert r.hslb.predicted_total == pytest.approx(paper.hslb_pred_total, rel=0.10)
    assert r.hslb.actual_total == pytest.approx(paper.hslb_actual_total, rel=0.10)
    assert r.manual_total == pytest.approx(paper.manual_total, rel=0.10)
    # HSLB at least matches the expert within noise.
    assert r.hslb.actual_total <= r.manual_total * 1.05
    # Rendering includes all components and the paper columns.
    out = r.render()
    assert "paper pred s" in out and "ocn" in out


def test_table3_eighth_32768_constrained_shape():
    r = run_table3_block("eighth-32768")
    paper = r.paper
    assert r.hslb.allocation["ocn"] == 19460  # the constrained optimum
    assert r.hslb.predicted_total == pytest.approx(paper.hslb_pred_total, rel=0.10)
    assert r.hslb.actual_total == pytest.approx(paper.hslb_actual_total, rel=0.10)


def test_table3_unconstrained_headline():
    """§IV-B: removing the ocean constraint buys roughly 25% at 32768."""
    con = run_table3_block("eighth-32768")
    unc = run_table3_block("eighth-32768-freeocn")
    gain = 1.0 - unc.hslb.actual_total / con.hslb.actual_total
    assert 0.10 <= gain <= 0.45  # paper: ~25% actual
    pred_gain = 1.0 - unc.hslb.predicted_total / con.hslb.predicted_total
    assert pred_gain >= 0.15  # paper: ~29-40% predicted


def test_fig2_r_squared_close_to_one():
    r = run_fig2()
    assert r.min_r_squared() > 0.99  # "R^2 was very close to 1"
    out = r.render()
    assert "R^2" in out
    for comp in ("lnd", "ice", "atm", "ocn"):
        assert comp in out
    # Curves must be decreasing overall (scalable code).
    for s in r.series.values():
        assert s.curve_seconds[0] > s.curve_seconds[-1]


def test_fig4_layout_ordering_and_r2():
    r = run_fig4()
    # Layout 1 & 2 similar; layout 3 worst (the paper's Figure 4 story).
    for i in range(len(r.node_counts)):
        t1 = r.predicted[Layout.HYBRID][i]
        t2 = r.predicted[Layout.SEQUENTIAL_GROUP][i]
        t3 = r.predicted[Layout.FULLY_SEQUENTIAL][i]
        assert t1 <= t2 * 1.02
        assert t3 > t2  # strictly worse at every size
        assert abs(t2 - t1) / t1 < 0.25  # "1 and 2 performed similar"
    assert r.r_squared_layout1() > 0.98  # paper: R^2 = 1.0
    # Scaling: more nodes, faster (monotone within noise).
    pred1 = r.predicted[Layout.HYBRID]
    assert all(pred1[i + 1] < pred1[i] for i in range(len(pred1) - 1))


def test_objective_ablation_minmax_wins():
    r = run_objective_ablation(n_fragments=8, total_nodes=128)
    mm = r.makespans[Objective.MIN_MAX]
    assert mm <= r.makespans[Objective.MAX_MIN] * 1.02
    assert mm <= r.makespans[Objective.MIN_SUM] * 1.02
    out = r.render()
    assert "min-max" in out


def test_tsync_ablation_monotone():
    r = run_tsync_ablation()
    assert r.monotone_nonimproving()
    # A very tight tolerance must cost something vs unconstrained.
    assert r.predicted_totals[-1] >= r.predicted_totals[0]
    assert "Tsync" in r.render()


def test_fmo_comparison_hslb_wins():
    r = run_fmo_comparison()
    assert r.hslb_always_best()
    # On diverse tasks the uniform baseline is far behind at small N.
    assert r.makespans["uniform"][0] > r.makespans["hslb"][0] * 1.5
    assert "hslb" in r.render()


def test_fmo_pipeline_prediction_quality():
    r = run_fmo_pipeline()
    assert r.prediction_error < 0.15
    assert r.min_r_squared > 0.99
    assert "predicted makespan" in r.render()


def test_fmo_speedup_monotone():
    r = run_fmo_speedup(node_counts=(16, 32, 64, 128, 256))
    assert r.monotone()
    s = r.speedups()
    assert s[0] == 1.0
    assert s[-1] > 4.0  # real scaling, even with Amdahl floors
    assert "speedup" in r.render()
