"""Acceptance tests for the robustness/fault experiments.

Covers the headline guarantees: a zero-noise gather reproduces the
reference allocation exactly (R1), and the full pipeline completes
end-to-end under the ISSUE's fault recipe (10% failures plus one
mid-run crash) on both the CESM and FMO scenarios.
"""

from repro.experiments.faults import (
    run_fault_degradation,
    run_fault_pipeline,
)
from repro.experiments.robustness import run_noise_sweep


def test_r1_zero_noise_reproduces_reference_exactly():
    """With noise=0 the gathered timings are the ground truth, so the sweep's
    first point *is* the reference: regret must be exactly 0.0, not approx."""
    result = run_noise_sweep(noise_levels=(0.0,), total_nodes=64, seed=11)
    assert result.reference_makespan == result.true_makespans[0]
    assert result.regret() == [0.0]


def test_r1_noise_only_adds_regret():
    result = run_noise_sweep(noise_levels=(0.0, 0.10), total_nodes=64, seed=11)
    regret = result.regret()
    assert regret[0] == 0.0
    assert all(r >= 0.0 for r in regret)


def test_pipeline_completes_under_faults():
    """ISSUE acceptance: 10% failure rate + one mid-run crash, fixed seed —
    both scenarios finish end-to-end with a recorded solver tier."""
    result = run_fault_pipeline(fail_rate=0.10, straggler_rate=0.05, seed=2012)
    assert [row[0] for row in result.rows] == [
        "cesm-1deg-128",
        "fmo-protein-12-256",
    ]
    assert all(row[1] == "yes" for row in result.rows)  # completed
    assert all(tier in {"oa", "nlpbb", "greedy"} for tier in result.tiers.values())
    assert all(row[4] > 0.0 for row in result.rows)  # finite makespan
    text = result.render()
    assert "cesm-1deg-128" in text and "fmo-protein-12-256" in text


def test_fault_pipeline_is_deterministic():
    a = run_fault_pipeline(seed=5)
    b = run_fault_pipeline(seed=5)
    assert a.rows == b.rows


def test_degradation_curve_orders_strategies():
    result = run_fault_degradation(
        n_fragments=24, n_groups=4, total_nodes=48, fractions=(0.3, 0.7), seed=7
    )
    assert set(result.degradation) == {"replan", "dynamic", "none"}
    for strategy, series in result.degradation.items():
        assert len(series) == 2
        assert all(d >= 0.0 for d in series), strategy
    # Static re-plan never loses to naive serial failover.
    for replan, none in zip(result.degradation["replan"], result.degradation["none"]):
        assert replan <= none + 1e-12
    assert result.worst("replan") <= result.worst("none")
    assert "replan" in result.render()
