"""Unit tests for the prediction / robustness / extension experiment runners.

Heavier end-to-end assertions live in the benchmark harness; these cover
the result objects' logic at small sizes so the modules are unit-tested in
isolation too.
"""

import pytest

from repro.experiments.extensions import run_ice_decomposition, run_tasking_tuning
from repro.experiments.predictions import (
    run_component_swap_prediction,
    run_job_size_prediction,
)
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.robustness import (
    NoiseSweepResult,
    run_noise_sweep,
    run_outlier_robustness,
)


def test_registry_includes_new_experiments():
    assert {
        "predict-job-size",
        "predict-component-swap",
        "robustness-noise",
        "robustness-outliers",
        "ext-ice-decomposition",
        "ext-tasking",
    } <= set(EXPERIMENTS)


def test_job_size_prediction_small():
    result = run_job_size_prediction(efficiency_floor=0.6)
    rec = result.recommendation
    assert rec.cost_efficient_nodes <= rec.shortest_time_nodes
    assert rec.efficiency_floor == 0.6
    assert "P1" in result.render()


def test_component_swap_prediction_small():
    result = run_component_swap_prediction()
    assert len(result.baseline.node_counts) == len(result.swapped.node_counts)
    assert result.improvement_at(0) > 0.0
    assert "P2" in result.render()


def test_noise_sweep_result_regret_math():
    r = NoiseSweepResult(
        noise_levels=(0.0, 0.1),
        true_makespans=[100.0, 105.0],
        reference_makespan=100.0,
    )
    assert r.regret() == pytest.approx([0.0, 0.05])
    assert "R1" in r.render()


def test_noise_sweep_reference_fallback():
    result = run_noise_sweep(noise_levels=(0.02, 0.05), total_nodes=64)
    # No zero-noise level: reference is the best observed, regret >= 0.
    assert min(result.regret()) == pytest.approx(0.0)


def test_outlier_robustness_small():
    result = run_outlier_robustness(total_nodes=64, outlier_prob=0.15)
    assert result.huber_prediction_error <= result.plain_prediction_error + 1e-9
    assert "R2" in result.render()


def test_ice_decomposition_runner_small():
    result = run_ice_decomposition(node_counts=(24, 96, 384))
    assert len(result.ml_multipliers) == 3
    assert all(
        m <= d + 1e-9
        for m, d in zip(result.ml_multipliers, result.default_multipliers)
    )
    assert "E1" in result.render()


def test_tasking_runner_small():
    result = run_tasking_tuning(total_nodes=64)
    assert result.tuned_total <= result.default_total * 1.05
    assert set(result.policies) == {"lnd", "ice", "atm", "ocn"}
    assert "E2" in result.render()
