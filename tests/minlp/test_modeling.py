"""Tests for the AMPL/Pyomo-like modeling layer."""

import math

import pytest

from repro.minlp.modeling import Model
from repro.minlp.problem import Domain, Sense


def test_var_kinds():
    m = Model()
    x = m.var("x", 0, 1)
    n = m.integer_var("n", 1, 99)
    z = m.binary_var("z")
    p = m.build()
    assert p.variable("x").domain is Domain.CONTINUOUS
    assert p.variable("n").domain is Domain.INTEGER
    assert p.variable("z").domain is Domain.BINARY
    assert p.variable("n").ub == 99.0


def test_var_list_names():
    m = Model()
    zs = m.var_list("z", 3, 0, 1, domain=Domain.BINARY)
    assert [v.name for v in zs] == ["z[0]", "z[1]", "z[2]"]
    assert m.build().num_variables == 3


def test_duplicate_variable_rejected():
    m = Model()
    m.var("x")
    with pytest.raises(ValueError):
        m.var("x")


def test_constraints_from_comparisons():
    m = Model()
    x = m.var("x", 0, 10)
    y = m.var("y", 0, 10)
    m.add(x + y <= 5, "cap")
    m.add(x - y >= -2)
    m.add_equals(x + 2 * y, 7, "eq")
    p = m.build()
    assert p.num_constraints == 3
    cap = p.constraint("cap")
    assert cap.ub == 0.0  # body is x+y-5
    assert p.constraint("eq").is_equality


def test_add_requires_relation():
    m = Model()
    x = m.var("x")
    with pytest.raises(TypeError, match="Relation"):
        m.add(x + 1)  # an Expr, not a Relation


def test_duplicate_constraint_name_rejected():
    m = Model()
    x = m.var("x")
    m.add(x <= 1, "c")
    with pytest.raises(ValueError):
        m.add(x <= 2, "c")


def test_trivially_true_constant_constraint_dropped():
    m = Model()
    x = m.var("x")
    m.add((x * 0 + 0.5) <= 1.0)  # body folds to a constant
    m.minimize(x)
    assert m.build().num_constraints == 0


def test_constant_infeasible_constraint_raises_at_build():
    m = Model()
    x = m.var("x")
    m.add((x * 0 + 0.5) >= 1.0)
    with pytest.raises(ValueError, match="infeasible"):
        m.build()


def test_objective_sense():
    m = Model()
    x = m.var("x")
    m.maximize(2 * x)
    assert m.build().sense is Sense.MAXIMIZE
    m.minimize(x)
    assert m.build().sense is Sense.MINIMIZE


def test_sos1_default_weights():
    m = Model()
    zs = m.var_list("z", 3, 0, 1, domain=Domain.BINARY)
    m.sos1(zs)
    p = m.build()
    sos = p.sos1_sets[0]
    assert sos.members == ("z[0]", "z[1]", "z[2]")
    assert sos.weights == (1.0, 2.0, 3.0)


def test_sos1_custom_weights_and_name():
    m = Model()
    zs = m.var_list("z", 2, 0, 1, domain=Domain.BINARY)
    m.sos1(zs, weights=[4.0, 768.0], name="ocean")
    p = m.build()
    assert p.sos1_sets[0].name == "ocean"
    assert p.sos1_sets[0].weights == (4.0, 768.0)


def test_numeric_objective_allowed():
    m = Model()
    m.var("x")
    m.minimize(0)
    assert m.build().objective_value({"x": 1.0}) == 0.0


def test_table1_style_model_builds():
    """A miniature of the paper's layout-1 model compiles end to end."""
    m = Model("layout1")
    t = m.var("T", lb=0.0)
    t_icelnd = m.var("T_icelnd", lb=0.0)
    n = {c: m.integer_var(f"n_{c}", 1, 128) for c in ("i", "l", "a", "o")}
    perf = {c: 100.0 / n[c] + 1.0 for c in n}
    m.add(t_icelnd >= perf["i"])
    m.add(t_icelnd >= perf["l"])
    m.add(t >= t_icelnd + perf["a"])
    m.add(t >= perf["o"])
    m.add(n["a"] + n["o"] <= 128)
    m.add(n["i"] + n["l"] <= n["a"])
    m.minimize(t)
    p = m.build()
    assert p.num_variables == 6
    assert p.num_constraints == 6
    assert len(p.nonlinear_constraints()) == 4
