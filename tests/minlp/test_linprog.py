"""Tests for the LP layer (HiGHS backend)."""

import math

import numpy as np
import pytest

from repro.minlp.expr import VarRef
from repro.minlp.linprog import LinearProgram, solve_lp, solve_problem_lp
from repro.minlp.problem import Problem, Sense
from repro.minlp.solution import Status

X, Y = VarRef("x"), VarRef("y")


def _lp(c, A, row_lb, row_ub, var_lb, var_ub, **kw):
    return LinearProgram(
        c=np.array(c, float),
        A=np.array(A, float),
        row_lb=np.array(row_lb, float),
        row_ub=np.array(row_ub, float),
        var_lb=np.array(var_lb, float),
        var_ub=np.array(var_ub, float),
        **kw,
    )


def test_simple_lp():
    # min -x - y  s.t. x + y <= 4, x,y in [0, 3]
    lp = _lp([-1, -1], [[1, 1]], [-math.inf], [4], [0, 0], [3, 3])
    res = solve_lp(lp)
    assert res.status is Status.OPTIMAL
    assert res.objective == pytest.approx(-4.0)
    assert res.x.sum() == pytest.approx(4.0)


def test_equality_row():
    lp = _lp([1, 2], [[1, 1]], [3], [3], [0, 0], [10, 10])
    res = solve_lp(lp)
    assert res.status is Status.OPTIMAL
    np.testing.assert_allclose(res.x, [3.0, 0.0], atol=1e-8)


def test_two_sided_row():
    # min x s.t. 2 <= x + y <= 5, 0 <= x,y <= 10
    lp = _lp([1, 0], [[1, 1]], [2], [5], [0, 0], [10, 10])
    res = solve_lp(lp)
    assert res.status is Status.OPTIMAL
    assert res.objective == pytest.approx(0.0)
    assert res.x[0] + res.x[1] >= 2 - 1e-8


def test_infeasible():
    lp = _lp([1], [[1]], [5], [math.inf], [0], [1])
    assert solve_lp(lp).status is Status.INFEASIBLE


def test_unbounded():
    lp = _lp([-1], np.zeros((0, 1)), [], [], [0], [math.inf])
    assert solve_lp(lp).status is Status.UNBOUNDED


def test_constant_offset_carried():
    lp = _lp([1], [[1]], [2], [math.inf], [0], [10], c0=7.0)
    res = solve_lp(lp)
    assert res.objective == pytest.approx(9.0)


def test_validation_errors():
    with pytest.raises(ValueError, match="columns"):
        _lp([1, 2], [[1]], [0], [1], [0, 0], [1, 1])
    with pytest.raises(ValueError, match="row_lb"):
        _lp([1], [[1]], [0, 1], [1], [0], [1])
    with pytest.raises(ValueError, match="crossed"):
        _lp([1], [[1]], [2], [1], [0], [1])


def test_from_problem_minimize():
    p = Problem()
    p.add_variable("x", 0, 4)
    p.add_variable("y", 0, 4)
    p.add_constraint("c", X + 2 * Y, ub=6.0)
    p.set_objective(-X - Y)
    sol = solve_problem_lp(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(-5.0)  # x=4, y=1
    assert sol.values["x"] == pytest.approx(4.0)


def test_from_problem_maximize_sign_handling():
    p = Problem()
    p.add_variable("x", 0, 4)
    p.add_constraint("c", X, ub=3.0)
    p.set_objective(5 * X + 1, Sense.MAXIMIZE)
    sol = solve_problem_lp(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(16.0)
    assert sol.values["x"] == pytest.approx(3.0)


def test_from_problem_constant_term_in_constraint():
    # body (x + 1) <= 4 means x <= 3.
    p = Problem()
    p.add_variable("x", 0, 10)
    p.add_constraint("c", X + 1, ub=4.0)
    p.set_objective(-X)
    sol = solve_problem_lp(p)
    assert sol.values["x"] == pytest.approx(3.0)


def test_lp_result_values_mapping():
    lp = _lp([1, 1], [[1, 1]], [2], [2], [0, 0], [2, 2], names=("a", "b"))
    res = solve_lp(lp)
    vals = res.values(lp)
    assert set(vals) == {"a", "b"}
    assert vals["a"] + vals["b"] == pytest.approx(2.0)
