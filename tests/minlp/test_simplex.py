"""The pure-Python simplex must agree with HiGHS."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp.linprog import LinearProgram, solve_lp
from repro.minlp.simplex import solve_lp_simplex
from repro.minlp.solution import Status


def _lp(c, A, row_lb, row_ub, var_lb, var_ub, **kw):
    return LinearProgram(
        c=np.array(c, float),
        A=np.array(A, float) if np.size(A) else np.zeros((0, len(c))),
        row_lb=np.array(row_lb, float),
        row_ub=np.array(row_ub, float),
        var_lb=np.array(var_lb, float),
        var_ub=np.array(var_ub, float),
        **kw,
    )


def _agree(lp, atol=1e-6):
    ours = solve_lp_simplex(lp)
    ref = solve_lp(lp)
    assert ours.status is ref.status, (ours.message, ref.message)
    if ref.status is Status.OPTIMAL:
        assert ours.objective == pytest.approx(ref.objective, abs=atol)
    return ours, ref


def test_basic_agreement():
    _agree(_lp([-1, -1], [[1, 1]], [-math.inf], [4], [0, 0], [3, 3]))


def test_equality_agreement():
    _agree(_lp([1, 2], [[1, 1]], [3], [3], [0, 0], [10, 10]))


def test_two_sided_agreement():
    _agree(_lp([1, -1], [[1, 1]], [2], [5], [0, 0], [10, 10]))


def test_infeasible_agreement():
    _agree(_lp([1], [[1]], [5], [math.inf], [0], [1]))


def test_unbounded_detected():
    lp = _lp([-1], [[0.0]], [-math.inf], [1.0], [0], [math.inf])
    assert solve_lp_simplex(lp).status is Status.UNBOUNDED


def test_free_variable_split():
    # min x s.t. x >= -7 (free variable, negative optimum).
    lp = _lp([1], [[1]], [-7], [math.inf], [-math.inf], [math.inf])
    res = solve_lp_simplex(lp)
    assert res.status is Status.OPTIMAL
    assert res.objective == pytest.approx(-7.0)
    assert res.x[0] == pytest.approx(-7.0)


def test_mirror_variable_only_upper_bound():
    # min -x with x <= 9 and a row keeping it feasible.
    lp = _lp([-1], [[1]], [-math.inf], [9], [-math.inf], [9])
    res = solve_lp_simplex(lp)
    assert res.status is Status.OPTIMAL
    assert res.objective == pytest.approx(-9.0)


def test_shifted_lower_bound():
    # min x with x >= 2.5 via variable bound only (no rows).
    lp = _lp([1], np.zeros((0, 1)), [], [], [2.5], [7.0])
    res = solve_lp_simplex(lp)
    assert res.status is Status.OPTIMAL
    assert res.x[0] == pytest.approx(2.5)


def test_box_only_unbounded():
    lp = _lp([-1], np.zeros((0, 1)), [], [], [0.0], [math.inf])
    assert solve_lp_simplex(lp).status is Status.UNBOUNDED


def test_degenerate_redundant_rows():
    # Duplicate rows exercise the redundant-artificial path.
    lp = _lp(
        [1, 1],
        [[1, 1], [1, 1], [2, 2]],
        [2, 2, 4],
        [2, 2, 4],
        [0, 0],
        [5, 5],
    )
    _agree(lp)


def test_constant_offset():
    lp = _lp([1], [[1]], [1], [math.inf], [0], [5], c0=3.0)
    res = solve_lp_simplex(lp)
    assert res.objective == pytest.approx(4.0)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_lps_agree_with_highs(data):
    """Property: on random bounded LPs both backends agree on status/value."""
    n = data.draw(st.integers(1, 4), label="n")
    m = data.draw(st.integers(0, 4), label="m")
    elem = st.floats(-5, 5, allow_nan=False, allow_infinity=False)
    c = data.draw(st.lists(elem, min_size=n, max_size=n), label="c")
    A = [
        data.draw(st.lists(elem, min_size=n, max_size=n), label=f"row{i}")
        for i in range(m)
    ]
    # Bounded box keeps everything finite so OPTIMAL/INFEASIBLE are the only
    # possible outcomes.
    var_lb = [0.0] * n
    var_ub = [data.draw(st.floats(0.5, 10.0), label=f"ub{j}") for j in range(n)]
    row_ub = [data.draw(st.floats(-2.0, 20.0), label=f"rub{i}") for i in range(m)]
    row_lb = [-math.inf] * m
    lp = _lp(c, A, row_lb, row_ub, var_lb, var_ub)
    _agree(lp, atol=1e-5)
