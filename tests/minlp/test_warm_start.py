"""Warm starts: certified incumbents, x0 plumbing, and the iteration win.

The service's warm-start pool rests on three facts established here:

* a partial ``x0`` is completed into a *feasible* incumbent (never handed
  to the tree uncertified);
* both drivers accept ``x0`` and still reach the same optimum;
* seeding the OA tree with a neighbor's solution measurably shrinks the
  search (the speedup the service metrics report).
"""

from __future__ import annotations

import pytest

from repro.minlp import solve
from repro.minlp.heuristics import warm_start_incumbent
from repro.minlp.modeling import Model
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa
from repro.minlp.solution import Status


# CESM-flavored T(n) = a/n + b n^c + d curves; the tight epigraph bound
# matters — warm-start completion NLPs start from the bound midpoint, so a
# loose bound buries the donor's head start (the service's model builder
# always sets T's bound from the single-node worst case).
_CURVES = [(1200.0, 0.5, 1.1, 2.0), (800.0, 0.3, 1.2, 1.0), (300.0, 0.2, 1.0, 0.5)]


def _alloc(budget: int, curves=_CURVES, t_ub: float = 2500.0):
    """Min-max allocation of ``budget`` nodes across the fitted curves."""
    m = Model(f"alloc-{budget}")
    t = m.var("T", 0, t_ub)
    ns = [m.integer_var(f"n{i}", 1, budget) for i in range(len(curves))]
    m.add(sum(ns) <= budget)
    for n, (a, b, c, d) in zip(ns, curves):
        m.add(t >= a / n + b * n**c + d)
    m.minimize(t)
    return m.build()


def test_warm_start_incumbent_completes_partial_point():
    p = _alloc(12)
    sol = warm_start_incumbent(p, {"n0": 6.0, "n1": 4.0, "n2": 2.0})
    assert sol.status.is_ok
    # The completion is certified feasible, including the epigraph var.
    assert p.max_violation(sol.values) <= 1e-6
    # Completion work is accounted, not hidden.
    assert sol.stats.nlp_solves >= 1


def test_warm_start_incumbent_rejects_infeasible_pin():
    p = _alloc(12)
    # 20+20+20 nodes cannot satisfy sum <= 12 once pinned.
    sol = warm_start_incumbent(p, {"n0": 20.0, "n1": 20.0, "n2": 20.0})
    assert sol.status is Status.INFEASIBLE


@pytest.mark.parametrize("solver", [solve_minlp_oa, solve_minlp_nlpbb])
def test_x0_does_not_change_the_optimum(solver):
    p = _alloc(12)
    cold = solver(p)
    warm = solver(p, x0=dict(cold.values))
    assert warm.status is Status.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, rel=1e-6)


def test_oa_warm_start_shrinks_the_search():
    # Solve a 64-node instance, then seed the neighboring 72-node instance
    # with its solution — the service's donor scenario.
    donor = solve_minlp_oa(_alloc(64))
    assert donor.status is Status.OPTIMAL
    seed = {k: v for k, v in donor.values.items() if k.startswith("n")}
    cold = solve_minlp_oa(_alloc(72))
    warm = solve_minlp_oa(_alloc(72), x0=seed)
    assert warm.status is Status.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, rel=1e-6)
    warm_work = warm.stats.nodes_explored + warm.stats.nlp_solves
    cold_work = cold.stats.nodes_explored + cold.stats.nlp_solves
    assert warm_work < cold_work, (
        f"warm start did not shrink the search: {warm_work} vs {cold_work}"
    )


def test_solve_dispatch_threads_x0():
    p = _alloc(12)
    cold = solve(p)
    for algorithm in ("auto", "oa", "nlpbb"):
        warm = solve(p, algorithm=algorithm, x0=dict(cold.values))
        assert warm.status is Status.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6)
