"""Cross-validation of the MINLP solvers (OA single-tree, OA multi-tree,
NLP-based B&B) against brute-force enumeration on small convex instances."""

import math

import pytest

from repro.minlp import solve
from repro.minlp.bnb import BnBOptions
from repro.minlp.brute import enumerate_assignments, solve_brute_force
from repro.minlp.modeling import Model
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa, solve_minlp_oa_multitree
from repro.minlp.problem import Domain
from repro.minlp.solution import Status

ALL_SOLVERS = [solve_minlp_oa, solve_minlp_oa_multitree, solve_minlp_nlpbb]


def _tiny_alloc():
    """Two-component min-max allocation with 12 nodes total."""
    m = Model("tiny")
    t = m.var("T", 0, 1e4)
    na = m.integer_var("na", 1, 11)
    no = m.integer_var("no", 1, 11)
    m.add(na + no <= 12)
    m.add(t >= 100.0 / na + 2.0)
    m.add(t >= 60.0 / no + 1.0)
    m.minimize(t)
    return m.build()


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_tiny_alloc_matches_brute(solver):
    p = _tiny_alloc()
    ref = solve_brute_force(p)
    sol = solver(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(ref.objective, rel=1e-5)
    assert sol.values["na"] == pytest.approx(ref.values["na"])


def test_tiny_alloc_known_optimum():
    # Enumerate by hand: na+no=12; t = max(100/na+2, 60/no+1).
    best = min(
        max(100.0 / na + 2.0, 60.0 / (12 - na) + 1.0) for na in range(1, 12)
    )
    sol = solve_minlp_oa(_tiny_alloc())
    assert sol.objective == pytest.approx(best, rel=1e-6)


def _sos_alloc():
    """Allocation where one component's node count lives in a sweet-spot set."""
    m = Model("sos")
    t = m.var("T", 0, 1e4)
    ni = m.integer_var("ni", 1, 30)
    zs = m.var_list("z", 4, 0, 1, domain=Domain.BINARY)
    spots = [2.0, 6.0, 14.0, 30.0]
    na = m.var("na", 2, 30)
    m.add_equals(sum(zs), 1)
    m.add_equals(sum(s * z for s, z in zip(spots, zs)), na)
    m.sos1(zs, weights=spots)
    m.add(ni + na <= 32)
    m.add(t >= 50.0 / ni + 3.0)
    m.add(t >= 200.0 / na + 1.0)
    m.minimize(t)
    return m.build()


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_sos_alloc_matches_brute(solver):
    p = _sos_alloc()
    ref = solve_brute_force(p)
    sol = solver(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(ref.objective, rel=1e-5)
    assert sol.values["na"] == pytest.approx(ref.values["na"])


def test_nonlinear_objective_epigraph_path():
    """OA must handle a nonlinear objective via epigraph reformulation."""
    m = Model()
    x = m.integer_var("x", 1, 20)
    m.minimize(150.0 / x + 3.0 * x)
    p = m.build()
    ref = solve_brute_force(p)
    for solver in ALL_SOLVERS:
        sol = solver(p)
        assert sol.status is Status.OPTIMAL
        assert sol.objective == pytest.approx(ref.objective, rel=1e-6)
        assert "_oa_eta" not in sol.values


def test_oa_rejects_nonlinear_equality():
    m = Model()
    x = m.var("x", 1, 5)
    n = m.integer_var("n", 1, 5)
    m.add_equals(1 / x + n, 2)  # nonlinear equality: never convex both ways
    m.minimize(x + n)
    with pytest.raises(ValueError, match="equality"):
        solve_minlp_oa(m.build())


def test_oa_normalizes_ge_constraints():
    """t >= f(n) arrives as a finite-lower-bound row and must still solve."""
    m = Model()
    t = m.var("t", 0, 1e4)
    n = m.integer_var("n", 1, 20)
    m.add(t >= 144.0 / n + 4.0 * n)
    m.minimize(t)
    p = m.build()
    ref = solve_brute_force(p)
    sol = solve_minlp_oa(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(ref.objective, rel=1e-6)
    assert sol.values["n"] == pytest.approx(6.0)  # sqrt(144/4)


def test_auto_dispatch_falls_back_to_nlpbb():
    m = Model()
    x = m.var("x", 1, 5)
    n = m.integer_var("n", 1, 5)
    m.add_equals(1 / x + n, 2)
    m.minimize(x + n)
    sol = solve(m.build())  # OA raises -> nlpbb
    assert sol.status.is_ok
    assert sol.objective == pytest.approx(2.0, abs=1e-4)  # x=1, n=1


def test_infeasible_minlp():
    m = Model()
    x = m.integer_var("x", 1, 3)
    t = m.var("t", 0, 1.0)
    m.add(t >= 10.0 / x)  # 10/3 > 1 for every x
    m.minimize(t)
    p = m.build()
    for solver in ALL_SOLVERS:
        assert solver(p).status is Status.INFEASIBLE


def test_pure_milp_through_oa():
    m = Model()
    x = m.integer_var("x", 0, 9)
    m.add(2 * x <= 11)
    m.maximize(x)
    sol = solve_minlp_oa(m.build())
    assert sol.objective == pytest.approx(5.0)


def test_auto_dispatch_routes():
    # LP
    m = Model()
    x = m.var("x", 0, 2)
    m.minimize(-x)
    assert solve(m.build()).objective == pytest.approx(-2.0)
    # NLP
    m = Model()
    x = m.var("x", 0.5, 4)
    m.minimize(1 / x + x)
    assert solve(m.build()).objective == pytest.approx(2.0, abs=1e-5)
    # unknown algorithm
    with pytest.raises(ValueError, match="unknown algorithm"):
        solve(m.build(), algorithm="simulated-annealing")


def test_enumerate_assignments_counts():
    p = _sos_alloc()
    combos = list(enumerate_assignments(p))
    # 30 integer choices for ni x 4 SOS choices.
    assert len(combos) == 120


def test_enumerate_assignments_limit_guard():
    p = _tiny_alloc()
    with pytest.raises(ValueError, match="enumerate"):
        list(enumerate_assignments(p, limit=3))


def test_brute_force_integer_only_problem():
    m = Model()
    x = m.integer_var("x", 0, 5)
    y = m.integer_var("y", 0, 5)
    m.add(x + y >= 4)
    m.minimize(3 * x + y)
    sol = solve_brute_force(m.build())
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(4.0)  # x=0, y=4


def test_solver_stats_populated():
    sol = solve_minlp_oa(_tiny_alloc())
    assert sol.stats.nlp_solves >= 1
    assert sol.stats.lp_solves >= 1
    assert sol.stats.cuts_added >= 1
    assert sol.stats.wall_time > 0.0
