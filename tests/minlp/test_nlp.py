"""Tests for the NLP layer."""

import math

import pytest

from repro.minlp.modeling import Model
from repro.minlp.nlp import solve_nlp
from repro.minlp.solution import Status


def test_unconstrained_quadratic():
    m = Model()
    x = m.var("x", -10, 10)
    m.minimize((x - 3) ** 2 + 1)
    sol = solve_nlp(m.build())
    assert sol.status.is_ok
    assert sol.values["x"] == pytest.approx(3.0, abs=1e-5)
    assert sol.objective == pytest.approx(1.0, abs=1e-8)


def test_bound_active_at_optimum():
    m = Model()
    x = m.var("x", 0, 2)
    m.minimize((x - 5) ** 2)
    sol = solve_nlp(m.build())
    assert sol.values["x"] == pytest.approx(2.0, abs=1e-6)


def test_inequality_constraint_active():
    # min x^2 + y^2 s.t. x + y >= 2 -> x = y = 1.
    m = Model()
    x = m.var("x", -5, 5)
    y = m.var("y", -5, 5)
    m.add(x + y >= 2)
    m.minimize(x**2 + y**2)
    sol = solve_nlp(m.build())
    assert sol.values["x"] == pytest.approx(1.0, abs=1e-5)
    assert sol.values["y"] == pytest.approx(1.0, abs=1e-5)


def test_equality_constraint():
    m = Model()
    x = m.var("x", 0, 5)
    y = m.var("y", 0, 5)
    m.add_equals(x + y, 4)
    m.minimize((x - 3) ** 2 + (y - 3) ** 2)
    sol = solve_nlp(m.build())
    assert sol.values["x"] + sol.values["y"] == pytest.approx(4.0, abs=1e-6)
    assert sol.values["x"] == pytest.approx(2.0, abs=1e-4)


def test_perf_model_allocation_shape():
    """Continuous relaxation of the paper's min-max core: the epigraph T
    lands on max(T_a, T_o) and the node split favors the slower component."""
    m = Model()
    t = m.var("T", lb=0.0, ub=1e5)
    na = m.var("n_a", 1, 127)
    no = m.var("n_o", 1, 127)
    m.add(na + no <= 128)
    m.add(t >= 27180.0 / na + 45.0)   # atm
    m.add(t >= 7731.0 / no + 42.0)    # ocn
    m.minimize(t)
    sol = solve_nlp(m.build())
    assert sol.status.is_ok
    # atm has the bigger scalable term so it should get more nodes.
    assert sol.values["n_a"] > sol.values["n_o"]
    assert sol.values["n_a"] + sol.values["n_o"] == pytest.approx(128.0, abs=1e-3)
    ta = 27180.0 / sol.values["n_a"] + 45.0
    to = 7731.0 / sol.values["n_o"] + 42.0
    assert sol.objective == pytest.approx(max(ta, to), rel=1e-4)
    # At the optimum the two component times balance.
    assert ta == pytest.approx(to, rel=1e-3)


def test_infeasible_detected():
    m = Model()
    x = m.var("x", 0, 1)
    m.add(x >= 2)
    m.minimize(x)
    sol = solve_nlp(m.build())
    assert sol.status is Status.INFEASIBLE


def test_maximize_sense():
    m = Model()
    x = m.var("x", 0, 4)
    m.maximize(-((x - 1) ** 2) + 7)
    sol = solve_nlp(m.build())
    assert sol.values["x"] == pytest.approx(1.0, abs=1e-5)
    assert sol.objective == pytest.approx(7.0, abs=1e-8)


def test_warm_start_dict_accepted():
    m = Model()
    x = m.var("x", 0.5, 10)
    m.minimize(1 / x + x)
    sol = solve_nlp(m.build(), x0={"x": 2.0})
    assert sol.values["x"] == pytest.approx(1.0, abs=1e-4)


def test_multistart_uses_rng(rng):
    m = Model()
    x = m.var("x", -4, 4)
    # Double well: global min at x = -2 (value -16-8=-24 vs -16+8=-8 at 2).
    m.minimize(x**4 - 8 * x**2 + 2 * x)
    sol = solve_nlp(m.build(), multistart=8, rng=rng)
    assert sol.values["x"] == pytest.approx(-2.06, abs=0.2)


def test_unknown_method_rejected():
    m = Model()
    m.var("x", 0, 1)
    m.minimize(0)
    with pytest.raises(ValueError, match="method"):
        solve_nlp(m.build(), method="newton-cg")


def test_stats_count_solves():
    m = Model()
    x = m.var("x", 0, 1)
    m.minimize(x)
    sol = solve_nlp(m.build(), multistart=3)
    assert sol.stats.nlp_solves == 3
