"""OA cut pool: memoization, stable names, ageing, and OA integration."""

import math

import pytest

from repro.minlp import BnBOptions, Model, OACutPool, solve_minlp_oa
from repro.minlp.cutpool import _POINT_DECIMALS
from repro.minlp.problem import Constraint
from repro.minlp.expr import VarRef
from repro.minlp.solution import Status


def _con(name="g"):
    # g(x) = x^2 <= 4 — convex, single-sided.
    x = VarRef("x")
    return Constraint(name, x * x, -math.inf, 4.0)


def test_cut_for_memoizes_and_names_stably():
    pool = OACutPool()
    pool.begin_solve()
    c1 = pool.cut_for(_con(), {"x": 1.0})
    c2 = pool.cut_for(_con(), {"x": 1.0})
    assert c1[0] == c2[0]
    assert c1[1] is c2[1]  # cached Expr object, not a rebuild
    assert pool.stats.hits == 1 and pool.stats.misses == 1
    # A fresh pool derives the identical name for the identical key.
    other = OACutPool()
    other.begin_solve()
    assert other.cut_for(_con(), {"x": 1.0})[0] == c1[0]


def test_point_quantization_merges_nearby_points():
    pool = OACutPool()
    pool.begin_solve()
    eps = 10 ** -(_POINT_DECIMALS + 2)
    a = pool.cut_for(_con(), {"x": 1.0})
    b = pool.cut_for(_con(), {"x": 1.0 + eps})
    c = pool.cut_for(_con(), {"x": 1.5})
    assert a[0] == b[0]
    assert a[0] != c[0]
    assert len(pool) == 2


def test_reactivation_across_epochs():
    pool = OACutPool()
    pool.begin_solve()
    pool.cut_for(_con(), {"x": 2.0})
    pool.end_solve({"x": 2.0})  # binding at x=2 (cut: 4x - 4 <= 4)
    pool.begin_solve()
    cuts = pool.active_cuts()
    assert len(cuts) == 1
    assert pool.stats.reactivated == 1


def test_slack_cuts_age_out_and_binding_cuts_survive():
    pool = OACutPool(max_age=2)
    pool.begin_solve()
    pool.cut_for(_con("bind"), {"x": 2.0})
    pool.cut_for(_con("slack"), {"x": -2.0})  # -4x - 4 <= 4: slack at x=2
    for _ in range(2):
        pool.begin_solve()
        evicted = pool.end_solve({"x": 2.0})
    assert evicted == 1
    assert len(pool) == 1
    names = [name for name, *_ in pool.active_cuts()]
    assert any("bind" in n for n in names)
    assert pool.stats.evicted == 1


def test_every_cut_ages_without_a_point():
    pool = OACutPool(max_age=1)
    pool.begin_solve()
    pool.cut_for(_con(), {"x": 1.0})
    assert pool.end_solve(None) == 1
    assert len(pool) == 0


def test_lru_cap_evicts_oldest():
    pool = OACutPool(max_cuts=3)
    pool.begin_solve()
    for i in range(5):
        pool.cut_for(_con(), {"x": float(i)})
    assert len(pool) == 3
    assert pool.stats.evicted == 2


def _minlp(seed=0):
    m = Model(f"pool-oa{seed}")
    x = m.integer_var("x", 1, 10)
    t = m.var("t", lb=0.0)
    m.add(t >= 100.0 / x + 2.0 * x)
    m.minimize(t)
    return m.build()


def test_oa_solve_with_private_pool_matches_without():
    problem = _minlp()
    base = solve_minlp_oa(problem, BnBOptions())
    pooled = solve_minlp_oa(problem, BnBOptions(), cut_pool=OACutPool())
    assert base.status is Status.OPTIMAL
    assert pooled.status is Status.OPTIMAL
    assert pooled.objective == pytest.approx(base.objective, abs=1e-7)


def test_shared_pool_reactivates_cuts_on_resolve():
    pool = OACutPool()
    problem = _minlp()
    first = solve_minlp_oa(problem, BnBOptions(), cut_pool=pool)
    assert first.status is Status.OPTIMAL
    misses_after_first = pool.stats.misses
    second = solve_minlp_oa(problem, BnBOptions(), cut_pool=pool)
    assert second.status is Status.OPTIMAL
    assert second.objective == pytest.approx(first.objective, abs=1e-9)
    # The re-solve reactivated prior linearizations instead of rebuilding all.
    assert pool.stats.reactivated > 0
    assert pool.stats.misses - misses_after_first < misses_after_first


def test_multitree_dedups_repeated_linearization_points():
    from repro.minlp import solve_minlp_oa_multitree

    pool = OACutPool()
    problem = _minlp(1)
    sol = solve_minlp_oa_multitree(problem, BnBOptions(), cut_pool=pool)
    assert sol.status in (Status.OPTIMAL, Status.FEASIBLE)
    ref = solve_minlp_oa(problem, BnBOptions())
    assert sol.objective == pytest.approx(ref.objective, abs=1e-6)
