"""Tests for solver result containers."""

import math

import pytest

from repro.minlp.solution import Solution, SolveStats, Status


def test_status_is_ok():
    assert Status.OPTIMAL.is_ok
    assert Status.FEASIBLE.is_ok
    for status in (
        Status.INFEASIBLE,
        Status.UNBOUNDED,
        Status.ITERATION_LIMIT,
        Status.TIME_LIMIT,
        Status.NODE_LIMIT,
        Status.ERROR,
    ):
        assert not status.is_ok


def test_gap_proven_optimal_is_zero():
    sol = Solution(Status.OPTIMAL, objective=10.0, bound=9.0)
    assert sol.gap == 0.0


def test_gap_feasible_uses_bound():
    sol = Solution(Status.FEASIBLE, objective=10.0, bound=8.0)
    assert sol.gap == pytest.approx(0.2)


def test_gap_infinite_without_point():
    assert Solution(Status.INFEASIBLE).gap == math.inf


def test_getitem_reads_values():
    sol = Solution(Status.OPTIMAL, values={"x": 3.0})
    assert sol["x"] == 3.0
    with pytest.raises(KeyError):
        sol["y"]


def test_require_ok():
    good = Solution(Status.FEASIBLE, values={"x": 1.0}, objective=1.0)
    assert good.require_ok() is good
    with pytest.raises(RuntimeError, match="infeasible"):
        Solution(Status.INFEASIBLE, message="proven").require_ok()


def test_stats_merge():
    a = SolveStats(nodes_explored=2, lp_solves=5, wall_time=1.0)
    b = SolveStats(nodes_explored=3, nlp_solves=7, cuts_added=4, wall_time=0.5)
    a.merge(b)
    assert a.nodes_explored == 5
    assert a.lp_solves == 5
    assert a.nlp_solves == 7
    assert a.cuts_added == 4
    assert a.wall_time == pytest.approx(1.5)
