"""Unit + property tests for the expression system."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp.expr import (
    Constant,
    NonlinearExpressionError,
    Relation,
    VarRef,
    as_expr,
    exp,
    linearize,
    log,
    prod_exprs,
    sqrt,
    sum_exprs,
)

X = VarRef("x")
Y = VarRef("y")


# ---------------------------------------------------------------- evaluation


def test_constant_evaluation():
    assert Constant(2.5).evaluate({}) == 2.5


def test_var_evaluation_and_missing():
    assert X.evaluate({"x": 3.0}) == 3.0
    with pytest.raises(KeyError, match="x"):
        X.evaluate({})


def test_arithmetic_evaluation():
    e = (X + 2) * (Y - 1) / 4 - X**2
    assert e.evaluate({"x": 2.0, "y": 5.0}) == pytest.approx((4 * 4) / 4 - 4)


def test_perf_function_shape():
    # The paper's T(n) = a/n + b*n^c + d.
    t = 27180.0 / X + 1e-4 * X**1.2 + 45.7
    assert t.evaluate({"x": 104.0}) == pytest.approx(27180 / 104 + 1e-4 * 104**1.2 + 45.7)


def test_vectorized_evaluation_broadcasts():
    e = 1.0 / X + X**2
    n = np.array([1.0, 2.0, 4.0])
    out = e.evaluate({"x": n})
    assert isinstance(out, np.ndarray)
    np.testing.assert_allclose(out, 1.0 / n + n**2)


def test_unary_functions():
    assert log(X).evaluate({"x": math.e}) == pytest.approx(1.0)
    assert exp(X).evaluate({"x": 0.0}) == pytest.approx(1.0)
    assert sqrt(X).evaluate({"x": 9.0}) == pytest.approx(3.0)


def test_rpow_and_rtruediv():
    assert (2.0**X).evaluate({"x": 3.0}) == pytest.approx(8.0)
    assert (1.0 / X).evaluate({"x": 4.0}) == pytest.approx(0.25)


# ------------------------------------------------------------ simplification


def test_additive_identity_folds():
    assert X + 0 == X
    assert 0 + X == X


def test_multiplicative_identities_fold():
    assert X * 1 == X
    assert X * 0 == Constant(0.0)
    assert (X * 0 + 3).evaluate({}) == 3.0


def test_constant_folding_in_chains():
    e = as_expr(2) + 3 + X
    # Constants collapse into a single term.
    assert e.evaluate({"x": 0.0}) == 5.0


def test_pow_simplifications():
    assert X**1 == X
    assert (X**0).evaluate({}) == 1.0
    assert (as_expr(2.0) ** 3).evaluate({}) == 8.0


def test_div_by_constant_becomes_scaling():
    e = X / 2.0
    assert e.evaluate({"x": 5.0}) == 2.5
    with pytest.raises(ZeroDivisionError):
        X / 0.0


# ------------------------------------------------------------------ equality


def test_structural_equality_and_hash():
    a = 2 * X + 1
    b = 2 * X + 1
    assert a == b
    assert hash(a) == hash(b)
    assert a != 2 * Y + 1


def test_immutability():
    with pytest.raises(AttributeError):
        X.name = "z"
    with pytest.raises(AttributeError):
        Constant(1.0).value = 2.0


# ------------------------------------------------------------------- variables


def test_variables_collection():
    e = X * Y + log(X) + 3
    assert e.variables() == frozenset({"x", "y"})
    assert Constant(1.0).variables() == frozenset()


def test_substitute():
    e = X**2 + Y
    out = e.substitute({"x": Y})
    assert out.evaluate({"y": 3.0}) == pytest.approx(12.0)


# ----------------------------------------------------------- differentiation


def _fd(e, values, var, h=1e-6):
    up = dict(values)
    dn = dict(values)
    up[var] += h
    dn[var] -= h
    return (e.evaluate(up) - e.evaluate(dn)) / (2 * h)


@pytest.mark.parametrize(
    "expr",
    [
        X + Y,
        X * Y,
        X / Y,
        X**3,
        X**1.7,
        2.0**X,
        X**Y,
        log(X),
        exp(X * 0.1),
        sqrt(X + Y),
        5.0 / X + 0.3 * X**1.5 + 2.0,
        (X + Y) * (X - Y) / (X + 1),
    ],
)
def test_symbolic_matches_finite_difference(expr):
    values = {"x": 1.7, "y": 2.3}
    for var in ("x", "y"):
        sym = expr.diff(var).evaluate(values)
        num = _fd(expr, values, var)
        assert sym == pytest.approx(num, rel=1e-5, abs=1e-7)


def test_derivative_of_constant_is_zero():
    assert Constant(5.0).diff("x").evaluate({}) == 0.0
    assert Y.diff("x").evaluate({}) == 0.0


def test_gradient_dict():
    e = X**2 + 3 * Y
    g = e.gradient({"x": 2.0, "y": 1.0})
    assert g == pytest.approx({"x": 4.0, "y": 3.0})


@settings(max_examples=60, deadline=None)
@given(
    a=st.floats(0.1, 100.0),
    b=st.floats(0.0, 10.0),
    c=st.floats(1.0, 2.5),
    d=st.floats(0.0, 50.0),
    n=st.floats(1.0, 2000.0),
)
def test_perf_model_derivative_property(a, b, c, d, n):
    """d/dn [a/n + b n^c + d] == -a/n^2 + b c n^(c-1), symbolically."""
    t = a / X + b * X**c + d
    sym = t.diff("x").evaluate({"x": n})
    expected = -a / n**2 + b * c * n ** (c - 1)
    assert sym == pytest.approx(expected, rel=1e-9, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(0.5, 5.0),
    y=st.floats(0.5, 5.0),
    k=st.floats(-3.0, 3.0),
)
def test_random_composite_derivative_property(x, y, k):
    e = (X * Y + k) ** 2 / (Y + 6.0) + exp(X * 0.2)
    values = {"x": x, "y": y}
    for var in ("x", "y"):
        assert e.diff(var).evaluate(values) == pytest.approx(
            _fd(e, values, var), rel=1e-4, abs=1e-6
        )


# ------------------------------------------------------------------ linearity


def test_linear_coefficients_affine():
    e = 2 * X - 3 * Y + 7
    coeffs, const = e.linear_coefficients()
    assert coeffs == {"x": 2.0, "y": -3.0}
    assert const == 7.0
    assert e.is_linear()


def test_linear_coefficients_with_scaling_division():
    coeffs, const = ((X + 4) / 2).linear_coefficients()
    assert coeffs == {"x": 0.5}
    assert const == 2.0


def test_nonlinear_rejected():
    for e in (X * Y, X**2, 1 / X, log(X)):
        assert not e.is_linear()
        with pytest.raises(NonlinearExpressionError):
            e.linear_coefficients()


def test_constant_powers_are_linear():
    e = Constant(2.0) ** 3 * X
    coeffs, const = e.linear_coefficients()
    assert coeffs == {"x": 8.0}


# ------------------------------------------------------------------ relations


def test_le_ge_build_relations():
    r = X + Y <= 5
    assert isinstance(r, Relation)
    assert r.ub == 0.0 and r.lb == -math.inf
    assert r.body.evaluate({"x": 2.0, "y": 3.0}) == 0.0

    r2 = X >= 1
    assert r2.lb == 0.0 and r2.ub == math.inf


def test_relation_equals():
    r = Relation.equals(X + Y, 4)
    assert r.lb == r.ub == 0.0
    assert r.body.evaluate({"x": 1.0, "y": 3.0}) == 0.0


def test_reversed_comparison_with_float():
    r = 3.0 <= X  # delegates to X.__ge__(3.0)
    assert isinstance(r, Relation)
    assert r.lb == 0.0


# ---------------------------------------------------------------- linearize


def test_linearize_is_tangent():
    f = 10.0 / X + X**2
    x0 = {"x": 2.0}
    lin = linearize(f, x0)
    assert lin.is_linear()
    # Tangency: equal value and derivative at the expansion point.
    assert lin.evaluate(x0) == pytest.approx(f.evaluate(x0))
    assert lin.diff("x").evaluate(x0) == pytest.approx(f.diff("x").evaluate(x0))


@settings(max_examples=50, deadline=None)
@given(x0=st.floats(0.5, 50.0), x=st.floats(0.5, 50.0))
def test_linearize_underestimates_convex(x0, x):
    """For convex f, the tangent is a global under-estimator (OA validity)."""
    f = 7.0 / X + 0.01 * X**1.5 + 3.0
    lin = linearize(f, {"x": x0})
    assert lin.evaluate({"x": x}) <= f.evaluate({"x": x}) + 1e-8


def test_sum_prod_helpers():
    assert sum_exprs([]).evaluate({}) == 0.0
    assert prod_exprs([]).evaluate({}) == 1.0
    assert sum_exprs([X, Y, Constant(1.0)]).evaluate({"x": 1, "y": 2}) == 4.0


def test_as_expr_rejects_junk():
    with pytest.raises(TypeError):
        as_expr("not an expression")
