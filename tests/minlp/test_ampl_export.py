"""Tests for the AMPL model exporter."""

import pytest

from repro.cesm.grids import one_degree
from repro.cesm.layouts import Layout, formulate_layout
from repro.minlp.ampl_export import _sanitize, problem_to_ampl
from repro.minlp.expr import exp, log, sqrt
from repro.minlp.modeling import Model
from repro.minlp.problem import Domain
from repro.perf.model import PerformanceModel


def _toy():
    m = Model("toy")
    t = m.var("T", 0, 1e4)
    n = m.integer_var("n", 1, 100)
    z = m.binary_var("z")
    m.add(t >= 100.0 / n + 2.0, "perf")
    m.add_equals(n + 50 * z, 60, "link")
    m.minimize(t)
    return m.build()


def test_sanitize():
    assert _sanitize("n_atm") == "n_atm"
    assert _sanitize("z[3]") == "z_3_"
    assert _sanitize("2bad") == "v_2bad"


def test_toy_export_structure():
    text = problem_to_ampl(_toy())
    assert "var T >= 0, <= 10000;" in text
    assert "var n integer >= 1, <= 100;" in text
    assert "var z binary;" in text
    assert "minimize objective: T;" in text
    # The modeling layer folds RHS constants into the body, so rows are
    # normalized against 0.
    assert "subject to con_perf:" in text and ">= 0;" in text
    assert "subject to con_link:" in text and "= 0;" in text
    assert "-60" in text  # the folded equality RHS


def test_nonlinear_operators_render():
    m = Model()
    x = m.var("x", 0.1, 10)
    m.add(log(x) + exp(x) + sqrt(x) <= 100, "funcs")
    m.add(x**1.5 <= 50, "pow")
    m.minimize(x)
    text = problem_to_ampl(m.build())
    assert "log(x)" in text and "exp(x)" in text and "sqrt(x)" in text
    assert "^ 1.5" in text


def test_maximize_and_ranges():
    m = Model()
    x = m.var("x", 0, 5)
    y = m.var("y", 0, 5)
    m.add(Relation := (x + y >= 1), "lo")
    m.maximize(2 * x + y)
    text = problem_to_ampl(m.build())
    assert "maximize objective:" in text
    assert "subject to con_lo:" in text and ">= 0;" in text


def test_sos_suffixes_emitted():
    m = Model()
    zs = m.var_list("z", 3, 0, 1, domain=Domain.BINARY)
    m.add_equals(sum(zs), 1)
    m.sos1(zs, weights=[2.0, 6.0, 14.0], name="spots")
    m.minimize(zs[0])
    text = problem_to_ampl(m.build())
    assert "suffix sosno integer" in text
    assert "let z_0_.sosno := 1;" in text
    assert "let z_2_.ref := 14;" in text


def test_name_collisions_resolved():
    m = Model()
    m.var("a_b", 0, 1)
    m.var("a[b]", 0, 1)  # sanitizes to a_b_ ... distinct from a_b
    m.minimize(0)
    text = problem_to_ampl(m.build())
    # Two distinct var statements.
    assert text.count("var a_b") == 2
    lines = [l for l in text.splitlines() if l.startswith("var ")]
    names = {l.split()[1] for l in lines}
    assert len(names) == 2


def test_layout1_model_exports_fully():
    models = {
        "lnd": PerformanceModel(a=1483.0, d=2.1),
        "ice": PerformanceModel(a=7600.0, d=11.0),
        "atm": PerformanceModel(a=27380.0, d=43.0),
        "ocn": PerformanceModel(a=7550.0, d=45.0),
    }
    problem = formulate_layout(models, 128, one_degree(), layout=Layout.HYBRID)
    text = problem_to_ampl(problem)
    assert "var n_atm integer" in text
    assert "subject to con_makespan_atm_side:" in text
    assert "suffix sosno" in text  # the ocean sweet-spot SOS
    # Every variable of the problem appears.
    for v in problem.variables:
        assert f"var " in text
    assert text.count("subject to") == problem.num_constraints
