"""Solver hot-path guarantees: three-way LP agreement and basis reuse.

Three independent LP implementations must agree on random instances —
HiGHS (:func:`solve_lp`), the vectorized simplex (:func:`solve_lp_simplex`),
and the retained loop-based reference
(:func:`solve_lp_simplex_reference`) — including degenerate, redundant-row,
and free-variable cases.  On top of that, warm-started solves (parent basis
handed to a child) must return **bit-identical** results to cold solves,
which is what lets branch-and-bound turn basis reuse on without changing a
single incumbent.
"""

import math

import numpy as np
import pytest

from repro.minlp import BnBOptions, Model
from repro.minlp.linprog import IncrementalLPSolver, LinearProgram, solve_lp
from repro.minlp.milp import solve_milp
from repro.minlp.simplex import basis_compatible, solve_lp_simplex
from repro.minlp.simplex_reference import solve_lp_simplex_reference
from repro.minlp.solution import Status
from repro.obs.metrics import REGISTRY


def _random_lp(rng, n, m, *, degenerate=False, redundant=False, free=False):
    A = rng.normal(size=(m, n))
    x_feas = rng.uniform(0.0, 1.0, n)
    b = A @ x_feas
    c = rng.normal(size=n)
    row_lb = b - rng.uniform(0.1, 1.0, m)
    row_ub = b + rng.uniform(0.1, 1.0, m)
    var_lb = np.zeros(n)
    var_ub = np.ones(n)
    if degenerate:
        # Equality rows through a common point create degenerate vertices.
        k = max(1, m // 2)
        row_lb[:k] = row_ub[:k] = b[:k]
    if redundant:
        A = np.vstack([A, A[0] * 2.0])
        row_lb = np.append(row_lb, row_lb[0] * 2.0)
        row_ub = np.append(row_ub, row_ub[0] * 2.0)
    if free:
        var_lb = var_lb.copy()
        var_ub = var_ub.copy()
        var_lb[0] = -math.inf
        var_ub[0] = math.inf
        j = 1 % n
        var_lb[j] = -math.inf  # mirror variable: only an upper bound
    return LinearProgram(
        c=c, A=A, row_lb=row_lb, row_ub=row_ub, var_lb=var_lb, var_ub=var_ub
    )


@pytest.mark.parametrize(
    "shape",
    [
        {},
        {"degenerate": True},
        {"redundant": True},
        {"free": True},
        {"degenerate": True, "redundant": True, "free": True},
    ],
    ids=["plain", "degenerate", "redundant", "free", "all"],
)
def test_three_way_agreement(shape):
    """Vectorized simplex == HiGHS == loop reference within 1e-7."""
    for seed in range(25):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 10))
        m = int(rng.integers(1, 8))
        lp = _random_lp(rng, n, m, **shape)
        ours = solve_lp_simplex(lp)
        highs = solve_lp(lp)
        ref = solve_lp_simplex_reference(lp)
        assert ours.status is ref.status, (seed, ours.message, ref.message)
        if not (
            ours.status is Status.UNBOUNDED and highs.status is Status.INFEASIBLE
        ):
            # HiGHS presolve reports "infeasible OR unbounded" as infeasible;
            # when both simplex codes prove unboundedness that's the same ray.
            assert ours.status is highs.status, (seed, ours.message, highs.message)
        if highs.status is Status.OPTIMAL:
            assert ours.objective == pytest.approx(highs.objective, abs=1e-7)
            assert ours.objective == pytest.approx(ref.objective, abs=1e-7)
            assert np.all(lp.A @ ours.x <= lp.row_ub + 1e-7)
            assert np.all(lp.A @ ours.x >= lp.row_lb - 1e-7)


def test_warm_start_bit_identical_to_cold():
    """A reused parent basis never changes the answer — only the path to it."""
    hits = 0
    for seed in range(40):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(4, 14))
        m = int(rng.integers(2, 10))
        parent = _random_lp(rng, n, m)
        root = solve_lp_simplex(parent)
        if root.status is not Status.OPTIMAL or root.basis is None:
            continue
        # Child: tighten one variable bound, as branching does.
        j = int(rng.integers(n))
        ub = parent.var_ub.copy()
        ub[j] = float(rng.uniform(0.2, 0.8))
        child = LinearProgram(
            c=parent.c, A=parent.A, row_lb=parent.row_lb, row_ub=parent.row_ub,
            var_lb=parent.var_lb, var_ub=ub,
        )
        warm = solve_lp_simplex(child, basis=root.basis)
        cold = solve_lp_simplex(child)
        hits += warm.warm_started
        assert warm.status is cold.status
        if cold.status is Status.OPTIMAL:
            assert warm.objective == cold.objective  # exact, not approx
            assert np.array_equal(warm.x, cold.x)
    assert hits >= 30  # reuse must actually engage, not silently cold-start


def test_warm_start_extends_over_appended_cut_rows():
    rng = np.random.default_rng(7)
    parent = _random_lp(rng, 10, 6)
    root = solve_lp_simplex(parent)
    assert root.basis is not None
    cut = rng.normal(size=10)
    child = LinearProgram(
        c=parent.c,
        A=np.vstack([parent.A, cut]),
        row_lb=np.append(parent.row_lb, -math.inf),
        row_ub=np.append(parent.row_ub, float(cut @ (np.ones(10) * 0.3))),
        var_lb=parent.var_lb,
        var_ub=parent.var_ub,
    )
    warm = solve_lp_simplex(child, basis=root.basis)
    cold = solve_lp_simplex(child)
    assert warm.warm_started
    assert warm.status is cold.status
    if cold.status is Status.OPTIMAL:
        assert warm.objective == cold.objective
        assert np.array_equal(warm.x, cold.x)


def test_incompatible_basis_falls_back_to_cold():
    rng = np.random.default_rng(11)
    a = _random_lp(rng, 6, 4)
    b = _random_lp(rng, 8, 4)  # different variable structure
    ra = solve_lp_simplex(a)
    rb = solve_lp_simplex(b, basis=ra.basis)
    assert not rb.warm_started
    assert rb.status is solve_lp_simplex(b).status


def test_basis_compatible_prefix_rule():
    rng = np.random.default_rng(13)
    lp = _random_lp(rng, 5, 3)
    res = solve_lp_simplex(lp)
    sig = res.basis.signature
    assert basis_compatible(res.basis, sig)
    # Extra trailing rows (appended cuts) keep compatibility...
    extended = (sig[0], sig[1], sig[2], sig[3] + (1,))
    assert basis_compatible(res.basis, extended)
    # ...but any change to variable structure or upper-row count breaks it.
    assert not basis_compatible(res.basis, (sig[0], sig[1] + 1, sig[2], sig[3]))
    assert not basis_compatible(res.basis, (sig[0], sig[1], sig[2] + 1, sig[3]))


def _knapsack_problem(seed=0, items=10):
    rng = np.random.default_rng(seed)
    value = rng.uniform(1.0, 10.0, items)
    weight = rng.uniform(1.0, 5.0, items)
    m = Model(f"knapsack{seed}")
    xs = [m.binary_var(f"x{i}") for i in range(items)]
    m.add(sum(float(weight[i]) * xs[i] for i in range(items)) <= float(weight.sum()) / 2)
    m.maximize(sum(float(value[i]) * xs[i] for i in range(items)))
    return m.build()


@pytest.mark.parametrize("backend", ["simplex", "auto"])
def test_bnb_basis_reuse_bit_identical_incumbents(backend):
    """Same tree, same incumbents, same objective — reuse on vs. off."""
    for seed in range(6):
        problem = _knapsack_problem(seed)
        on = solve_milp(
            problem, BnBOptions(lp_backend=backend, basis_reuse=True)
        )
        off = solve_milp(
            problem, BnBOptions(lp_backend=backend, basis_reuse=False)
        )
        assert on.status is off.status
        assert on.objective == off.objective  # bit-identical, not approx
        assert on.values == off.values
        assert on.stats.nodes_explored == off.stats.nodes_explored


def test_bnb_reuse_counters_recorded():
    before_hit = REGISTRY.counter("solver_basis_reuse_total").value(outcome="hit")
    solve_milp(_knapsack_problem(3), BnBOptions(lp_backend="simplex"))
    after_hit = REGISTRY.counter("solver_basis_reuse_total").value(outcome="hit")
    assert after_hit > before_hit  # child nodes actually reused parent bases


def test_simplex_backend_agrees_with_highs_milp():
    for seed in range(4):
        problem = _knapsack_problem(seed, items=8)
        fast = solve_milp(problem, BnBOptions(lp_backend="simplex"))
        ref = solve_milp(problem, BnBOptions(lp_backend="highs"))
        assert fast.status is ref.status
        assert fast.objective == pytest.approx(ref.objective, abs=1e-7)


def test_incremental_solver_rejects_unknown_backend():
    problem = _knapsack_problem(0, items=3)
    with pytest.raises(ValueError, match="unknown LP backend"):
        IncrementalLPSolver(problem, backend="cplex")


def test_incremental_solver_add_row_invalidates_cache():
    from repro.minlp.expr import VarRef

    problem = _knapsack_problem(1, items=5)
    solver = IncrementalLPSolver(problem, backend="simplex")
    first = solver.solve({})
    assert first.status is Status.OPTIMAL
    # A cut that actually binds: forbid the current all-or-nothing optimum.
    body = sum(VarRef(f"x{i}") for i in range(5))
    solver.add_row(body, -math.inf, 2.0)
    second = solver.solve({}, basis=solver.last_basis)
    assert second.status is Status.OPTIMAL
    assert sum(v for k, v in second.values.items() if k.startswith("x")) <= 2 + 1e-9
