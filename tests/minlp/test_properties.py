"""Cross-cutting property-based tests of the solver stack.

These are the library's deepest invariants:

* presolve never changes a model's optimal value;
* the incremental LP engine agrees with from-scratch solves under random
  bound overrides;
* all four MINLP algorithms agree with brute force on random convex
  allocation instances (the HSLB problem family).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp import solve_milp
from repro.minlp.brute import solve_brute_force
from repro.minlp.ecp import solve_minlp_ecp
from repro.minlp.linprog import IncrementalLPSolver, LinearProgram, solve_lp, solve_problem_lp
from repro.minlp.modeling import Model
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa, solve_minlp_oa_multitree
from repro.minlp.presolve import presolve
from repro.minlp.problem import Domain
from repro.minlp.solution import Status


# ------------------------------------------------------- presolve invariance


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_presolve_preserves_milp_optimum(data):
    n = data.draw(st.integers(2, 5), label="n")
    values = data.draw(
        st.lists(st.integers(1, 30), min_size=n, max_size=n), label="values"
    )
    weights = data.draw(
        st.lists(st.integers(1, 12), min_size=n, max_size=n), label="weights"
    )
    cap = data.draw(st.integers(1, 40), label="cap")

    m = Model("knap")
    zs = m.var_list("z", n, 0, 1, domain=Domain.BINARY)
    m.add(sum(w * z for w, z in zip(weights, zs)) <= cap)
    m.maximize(sum(v * z for v, z in zip(values, zs)))
    p = m.build()

    tightened, report = presolve(p)
    assert not report.infeasible  # z=0 is always feasible here
    before = solve_milp(p)
    after = solve_milp(tightened)
    assert before.status is after.status is Status.OPTIMAL
    assert after.objective == pytest.approx(before.objective)


def test_presolve_detecting_infeasible_matches_solver():
    m = Model()
    x = m.integer_var("x", 0, 5)
    y = m.integer_var("y", 0, 5)
    m.add(x + y >= 20)
    m.minimize(x)
    p = m.build()
    _, report = presolve(p)
    assert report.infeasible
    assert solve_milp(p).status is Status.INFEASIBLE


# -------------------------------------------- incremental LP == full solves


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_incremental_lp_matches_scratch_solves(data):
    n = data.draw(st.integers(2, 5), label="n")
    mrows = data.draw(st.integers(1, 4), label="m")
    elem = st.floats(-4, 4, allow_nan=False, allow_infinity=False)

    m = Model("lp")
    xs = [m.var(f"x{j}", 0.0, 8.0) for j in range(n)]
    c = data.draw(st.lists(elem, min_size=n, max_size=n), label="c")
    for i in range(mrows):
        row = data.draw(st.lists(elem, min_size=n, max_size=n), label=f"A{i}")
        rhs = data.draw(st.floats(0.0, 20.0), label=f"b{i}")
        m.add(sum(a * x for a, x in zip(row, xs)) <= rhs, f"r{i}")
    m.minimize(sum(ci * x for ci, x in zip(c, xs)))
    p = m.build()

    inc = IncrementalLPSolver(p)
    # Random bound overrides on a subset of variables.
    overrides = {}
    for j in range(n):
        if data.draw(st.booleans(), label=f"override{j}"):
            lo = data.draw(st.floats(0.0, 4.0), label=f"lo{j}")
            hi = data.draw(st.floats(4.0, 8.0), label=f"hi{j}")
            overrides[f"x{j}"] = (lo, hi)

    fast = inc.solve(overrides)
    slow = solve_problem_lp(p.with_bounds(overrides))
    assert fast.status is slow.status
    if slow.status is Status.OPTIMAL:
        assert fast.objective == pytest.approx(slow.objective, abs=1e-6)


def test_incremental_lp_cut_rows_match_scratch():
    m = Model("cuts")
    x = m.var("x", 0, 10)
    y = m.var("y", 0, 10)
    m.add(x + y <= 12, "cap")
    m.minimize(-x - 2 * y)
    p = m.build()
    inc = IncrementalLPSolver(p)
    from repro.minlp.expr import VarRef

    cut = 2 * VarRef("x") + VarRef("y")
    inc.add_row(cut, -math.inf, 10.0)
    fast = inc.solve({})

    p2 = m.build()
    p2.add_constraint("cut", cut, ub=10.0)
    slow = solve_problem_lp(p2)
    assert fast.objective == pytest.approx(slow.objective, abs=1e-8)


def test_incremental_lp_rejects_nonlinear():
    m = Model()
    x = m.var("x", 1, 5)
    m.add(1 / x <= 1)
    m.minimize(x)
    with pytest.raises(ValueError, match="nonlinear"):
        IncrementalLPSolver(m.build())


def test_incremental_lp_crossed_override_infeasible():
    m = Model()
    x = m.var("x", 0, 10)
    m.minimize(x)
    inc = IncrementalLPSolver(m.build())
    assert inc.solve({"x": (6.0, 4.0)}).status is Status.INFEASIBLE


# -------------------------------------- the solver zoo on random instances


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_all_solvers_agree_on_random_allocation_minlp(data):
    """Random HSLB-family instances: min-max allocation over 2-3 components
    with Amdahl curves; OA single-tree, OA multi-tree, NLP-BB, and ECP must
    all match brute-force enumeration."""
    k = data.draw(st.integers(2, 3), label="k")
    budget = data.draw(st.integers(k + 2, 16), label="budget")
    params = [
        (
            data.draw(st.floats(10.0, 500.0), label=f"a{i}"),
            data.draw(st.floats(0.0, 5.0), label=f"d{i}"),
        )
        for i in range(k)
    ]

    m = Model("zoo")
    t = m.var("T", 0, 1e5)
    ns = [m.integer_var(f"n{i}", 1, budget) for i in range(k)]
    m.add(sum(ns) <= budget)
    for i, (a, d) in enumerate(params):
        m.add(t >= a / ns[i] + d)
    m.minimize(t)
    p = m.build()

    ref = solve_brute_force(p)
    assert ref.status is Status.OPTIMAL
    for solver in (
        solve_minlp_oa,
        solve_minlp_oa_multitree,
        solve_minlp_nlpbb,
        solve_minlp_ecp,
    ):
        sol = solver(p)
        assert sol.status is Status.OPTIMAL, solver.__name__
        assert sol.objective == pytest.approx(ref.objective, rel=1e-4), solver.__name__
