"""Tests for branch-and-bound over LP relaxations (MILP)."""

import math

import pytest

from repro.minlp.bnb import BnBOptions
from repro.minlp.milp import solve_milp
from repro.minlp.modeling import Model
from repro.minlp.problem import Domain
from repro.minlp.solution import Status


def _knapsack(values, weights, cap):
    m = Model("knap")
    zs = m.var_list("z", len(values), 0, 1, domain=Domain.BINARY)
    m.add(sum(w * z for w, z in zip(weights, zs)) <= cap)
    m.maximize(sum(v * z for v, z in zip(values, zs)))
    return m.build(), zs


def test_knapsack_optimum():
    # values 10,13,7; weights 3,4,2; cap 5 -> best is items 1+3? w=5 v=17.
    p, zs = _knapsack([10, 13, 7], [3, 4, 2], 5)
    sol = solve_milp(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(17.0)
    assert sol.values["z[0]"] == pytest.approx(1.0)
    assert sol.values["z[2]"] == pytest.approx(1.0)


def test_pure_lp_shortcut_via_integralities():
    m = Model()
    x = m.integer_var("x", 0, 10)
    m.add(2 * x <= 7)
    m.maximize(x)
    sol = solve_milp(m.build())
    assert sol.objective == pytest.approx(3.0)  # floor(3.5)


def test_integer_rounding_not_assumed():
    # LP optimum x=2.5, y=2.5; best integer point is NOT its rounding.
    m = Model()
    x = m.integer_var("x", 0, 10)
    y = m.integer_var("y", 0, 10)
    m.add(x + y <= 5)
    m.add(4 * x + y <= 12)
    m.maximize(3 * x + 2 * y)
    sol = solve_milp(m.build())
    assert sol.status is Status.OPTIMAL
    # Enumerate by hand: (2,3)->12, (1,4)->11, (2,4) infeasible(x+y=6), best 12.
    assert sol.objective == pytest.approx(12.0)


def test_infeasible_milp():
    m = Model()
    x = m.integer_var("x", 0, 3)
    m.add(x >= 1.2)
    m.add(x <= 1.8)  # no integer in [2, 1] after rounding
    m.minimize(x)
    sol = solve_milp(m.build())
    assert sol.status is Status.INFEASIBLE


def test_equality_milp():
    m = Model()
    x = m.integer_var("x", 0, 10)
    y = m.integer_var("y", 0, 10)
    m.add_equals(2 * x + 3 * y, 12)
    m.minimize(x + y)
    sol = solve_milp(m.build())
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(4.0)  # x=0,y=4 or x=3,y=2 -> 5; 0+4=4


def test_sos1_selects_single_member():
    m = Model()
    zs = m.var_list("z", 4, 0, 1, domain=Domain.BINARY)
    n = m.var("n", 0, 100)
    weights = [10.0, 20.0, 40.0, 80.0]
    m.add_equals(sum(zs), 1)
    m.add_equals(sum(w * z for w, z in zip(weights, zs)), n)
    m.sos1(zs, weights=weights)
    m.add(n >= 35)
    m.minimize(n)
    sol = solve_milp(m.build())
    assert sol.status is Status.OPTIMAL
    assert sol.values["n"] == pytest.approx(40.0)
    chosen = [i for i in range(4) if sol.values[f"z[{i}]"] > 0.5]
    assert chosen == [2]


def test_sos_branching_vs_binary_branching_same_answer():
    m = Model()
    zs = m.var_list("z", 8, 0, 1, domain=Domain.BINARY)
    n = m.var("n", 0, 1000)
    weights = [float(2**k) for k in range(8)]
    m.add_equals(sum(zs), 1)
    m.add_equals(sum(w * z for w, z in zip(weights, zs)), n)
    m.sos1(zs, weights=weights)
    m.add(n >= 21)
    m.minimize(n)
    p = m.build()
    with_sos = solve_milp(p, BnBOptions(sos_branching=True))
    without = solve_milp(p, BnBOptions(sos_branching=False))
    assert with_sos.objective == pytest.approx(32.0)
    assert without.objective == pytest.approx(32.0)


def test_node_limit_reported():
    p, _ = _knapsack(list(range(1, 13)), [3] * 12, 7)
    sol = solve_milp(p, BnBOptions(node_limit=1))
    assert sol.status in (Status.NODE_LIMIT, Status.OPTIMAL, Status.FEASIBLE)
    if sol.status is Status.NODE_LIMIT:
        assert sol.stats.nodes_explored == 1


def test_bound_gap_reported_on_optimal():
    p, _ = _knapsack([10, 13, 7], [3, 4, 2], 5)
    sol = solve_milp(p)
    assert sol.gap == 0.0
    assert sol.bound == pytest.approx(sol.objective)


def test_branch_rule_first_fractional():
    p, _ = _knapsack([5, 4, 3], [4, 3, 2], 6)
    sol = solve_milp(p, BnBOptions(branch_rule="first_fractional"))
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(8.0)  # items 1+3: w=6 v=8


def test_nonlinear_rejected():
    m = Model()
    x = m.integer_var("x", 1, 5)
    m.add(1 / x <= 1)
    m.minimize(x)
    with pytest.raises(ValueError, match="nonlinear"):
        solve_milp(m.build())


def test_maximize_bound_is_upper():
    p, _ = _knapsack([3, 5], [2, 3], 4)
    sol = solve_milp(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(5.0)
    assert sol.bound == pytest.approx(5.0)
