"""Tests for presolve bound tightening and primal heuristics."""

import math

import pytest

from repro.minlp.heuristics import rounding_heuristic
from repro.minlp.modeling import Model
from repro.minlp.nlp import solve_nlp
from repro.minlp.presolve import presolve
from repro.minlp.problem import Domain
from repro.minlp.solution import Status


def test_propagation_tightens_upper_bound():
    m = Model()
    x = m.var("x", 0, 100)
    y = m.var("y", 0, 100)
    m.add(x + y <= 10)
    m.minimize(x)
    tight, report = presolve(m.build())
    assert tight.variable("x").ub == pytest.approx(10.0)
    assert tight.variable("y").ub == pytest.approx(10.0)
    assert report.bounds_tightened >= 2
    assert not report.infeasible


def test_propagation_tightens_lower_bound():
    m = Model()
    x = m.var("x", 0, 100)
    y = m.var("y", 0, 5)
    m.add(x + y >= 50)
    m.minimize(x)
    tight, _ = presolve(m.build())
    assert tight.variable("x").lb == pytest.approx(45.0)


def test_negative_coefficient_direction():
    m = Model()
    x = m.var("x", 0, 100)
    y = m.var("y", 0, 100)
    m.add(x - y <= -20)  # x <= y - 20 -> x <= 80, y >= 20
    m.minimize(x)
    tight, _ = presolve(m.build())
    assert tight.variable("y").lb == pytest.approx(20.0)
    assert tight.variable("x").ub == pytest.approx(80.0)


def test_integer_bounds_rounded():
    m = Model()
    n = m.integer_var("n", 0, 100)
    m.add(2 * n <= 11)
    m.minimize(n)
    tight, _ = presolve(m.build())
    assert tight.variable("n").ub == pytest.approx(5.0)


def test_infeasibility_detected():
    m = Model()
    x = m.var("x", 0, 1)
    m.add(x >= 5)
    m.minimize(x)
    _, report = presolve(m.build())
    assert report.infeasible


def test_constant_row_infeasibility():
    m = Model()
    x = m.var("x", 0, 1)
    m.add(x * 0 + 5 <= 4, "const")  # modeling drops it... build raises instead
    m.minimize(x)
    with pytest.raises(ValueError):
        m.build()


def test_fixed_variables_reported():
    m = Model()
    x = m.var("x", 0, 10)
    y = m.var("y", 3, 10)
    m.add(x + y <= 3)
    m.minimize(x)
    tight, report = presolve(m.build())
    assert "x" in report.fixed_variables  # x forced to 0
    assert "y" in report.fixed_variables  # y forced to 3


def test_nonlinear_rows_ignored_not_crashing():
    m = Model()
    x = m.var("x", 1, 10)
    y = m.var("y", 0, 100)
    m.add(1 / x <= 1)
    m.add(x + y <= 5)
    m.minimize(x)
    tight, report = presolve(m.build())
    assert tight.variable("y").ub == pytest.approx(4.0)


def test_rounding_heuristic_produces_feasible_point():
    m = Model()
    t = m.var("T", 0, 1e4)
    na = m.integer_var("na", 1, 11)
    no = m.integer_var("no", 1, 11)
    m.add(na + no <= 12)
    m.add(t >= 100.0 / na + 2.0)
    m.add(t >= 60.0 / no + 1.0)
    m.minimize(t)
    p = m.build()
    relax = solve_nlp(p)
    sol = rounding_heuristic(p, relax.values)
    assert sol.status is Status.FEASIBLE
    assert p.is_feasible(sol.values, tol=1e-5)
    assert sol.objective >= relax.objective - 1e-6  # heuristic can't beat bound


def test_rounding_heuristic_respects_sos():
    m = Model()
    zs = m.var_list("z", 3, 0, 1, domain=Domain.BINARY)
    n = m.var("n", 0, 50)
    spots = [5.0, 20.0, 50.0]
    m.add_equals(sum(zs), 1)
    m.add_equals(sum(s * z for s, z in zip(spots, zs)), n)
    m.sos1(zs, weights=spots)
    t = m.var("T", 0, 1e4)
    m.add(t >= 100.0 / n)
    m.minimize(t)
    p = m.build()
    relax = solve_nlp(p)
    sol = rounding_heuristic(p, relax.values)
    assert sol.status is Status.FEASIBLE
    nonzero = [i for i in range(3) if sol.values[f"z[{i}]"] > 1e-6]
    assert len(nonzero) == 1


def test_rounding_heuristic_reports_infeasible():
    m = Model()
    n = m.integer_var("n", 0, 10)
    x = m.var("x", 0, 10)
    m.add_equals(n + x * 0, 0.5)  # n must equal 0.5: integrally impossible
    m.minimize(n)
    p = m.build()
    sol = rounding_heuristic(p, {"n": 0.5, "x": 0.0})
    assert sol.status is Status.INFEASIBLE


# --- diving heuristic ---------------------------------------------------------


def _alloc_problem():
    m = Model()
    t = m.var("T", 0, 1e4)
    na = m.integer_var("na", 1, 11)
    no = m.integer_var("no", 1, 11)
    m.add(na + no <= 12)
    m.add(t >= 100.0 / na + 2.0)
    m.add(t >= 60.0 / no + 1.0)
    m.minimize(t)
    return m.build()


def test_diving_heuristic_finds_feasible_point():
    from repro.minlp.heuristics import diving_heuristic

    p = _alloc_problem()
    sol = diving_heuristic(p)
    assert sol.status is Status.FEASIBLE
    assert p.is_feasible(sol.values, tol=1e-5)
    # Heuristic value is an upper bound on the true optimum.
    from repro.minlp.brute import solve_brute_force

    opt = solve_brute_force(p)
    assert sol.objective >= opt.objective - 1e-6
    # On this smooth model the dive should land near-optimal.
    assert sol.objective <= opt.objective * 1.15


def test_diving_heuristic_resolves_sos():
    from repro.minlp.heuristics import diving_heuristic

    m = Model()
    zs = m.var_list("z", 3, 0, 1, domain=Domain.BINARY)
    n = m.var("n", 0, 50)
    spots = [5.0, 20.0, 50.0]
    m.add_equals(sum(zs), 1)
    m.add_equals(sum(s * z for s, z in zip(spots, zs)), n)
    m.sos1(zs, weights=spots)
    t = m.var("T", 0, 1e4)
    m.add(t >= 100.0 / n)
    m.minimize(t)
    p = m.build()
    sol = diving_heuristic(p)
    assert sol.status is Status.FEASIBLE
    nonzero = [i for i in range(3) if sol.values[f"z[{i}]"] > 1e-6]
    assert len(nonzero) == 1


def test_diving_heuristic_reports_infeasible():
    from repro.minlp.heuristics import diving_heuristic

    m = Model()
    x = m.integer_var("x", 0, 3)
    m.add(x >= 1.2)
    m.add(x <= 1.8)
    m.minimize(x)
    sol = diving_heuristic(m.build())
    assert sol.status is Status.INFEASIBLE


def test_diving_budget_limit():
    from repro.minlp.heuristics import diving_heuristic

    p = _alloc_problem()
    sol = diving_heuristic(p, max_dives=0)
    assert sol.status in (Status.FEASIBLE, Status.ITERATION_LIMIT)
