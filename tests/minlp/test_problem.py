"""Tests for the flat Problem container."""

import math

import numpy as np
import pytest

from repro.minlp.expr import NonlinearExpressionError, VarRef
from repro.minlp.problem import (
    Constraint,
    Domain,
    Problem,
    Sense,
    SOS1,
    Variable,
    values_to_vector,
    vector_to_values,
)

X = VarRef("x")
Y = VarRef("y")


def _basic() -> Problem:
    p = Problem("p")
    p.add_variable("x", 0, 10)
    p.add_variable("y", 0, 5, Domain.INTEGER)
    p.add_constraint("c1", X + Y, ub=8.0)
    p.set_objective(X + 2 * Y, Sense.MAXIMIZE)
    return p


def test_variable_validation():
    with pytest.raises(ValueError, match="lb"):
        Variable("x", 5, 1)
    with pytest.raises(ValueError, match="binary"):
        Variable("b", 0, 2, Domain.BINARY)
    assert Variable("n", 0, 3, Domain.INTEGER).is_discrete
    assert not Variable("t").is_discrete


def test_constraint_validation():
    with pytest.raises(ValueError, match="unbounded on both sides"):
        Constraint("c", X)
    with pytest.raises(ValueError, match="lb"):
        Constraint("c", X, lb=2, ub=1)
    c = Constraint("c", X, lb=1, ub=1)
    assert c.is_equality


def test_constraint_violation():
    c = Constraint("c", X + Y, lb=2.0, ub=4.0)
    assert c.violation({"x": 1.0, "y": 2.0}) == 0.0
    assert c.violation({"x": 0.0, "y": 0.0}) == pytest.approx(2.0)
    assert c.violation({"x": 5.0, "y": 1.0}) == pytest.approx(2.0)


def test_sos1_validation():
    with pytest.raises(ValueError, match="length mismatch"):
        SOS1("s", ("a", "b"), (1.0,))
    with pytest.raises(ValueError, match="at least two"):
        SOS1("s", ("a",), (1.0,))
    with pytest.raises(ValueError, match="duplicate"):
        SOS1("s", ("a", "a"), (1.0, 2.0))
    with pytest.raises(ValueError, match="nondecreasing"):
        SOS1("s", ("a", "b"), (2.0, 1.0))


def test_duplicate_names_rejected():
    p = _basic()
    with pytest.raises(ValueError, match="duplicate variable"):
        p.add_variable("x")
    with pytest.raises(ValueError, match="duplicate constraint"):
        p.add_constraint("c1", X, ub=1.0)


def test_undeclared_variables_rejected():
    p = Problem()
    p.add_variable("x")
    with pytest.raises(ValueError, match="undeclared"):
        p.add_constraint("c", X + VarRef("ghost"), ub=0.0)
    with pytest.raises(ValueError, match="undeclared"):
        p.set_objective(VarRef("ghost"))
    with pytest.raises(ValueError, match="undeclared"):
        p.add_sos1("s", ["x", "ghost"], [1.0, 2.0])


def test_classification():
    p = _basic()
    assert p.is_mip()
    assert p.is_linear()
    p2 = Problem()
    p2.add_variable("x", 1, 5)
    p2.add_constraint("nl", 1 / X, ub=1.0)
    assert not p2.is_linear()
    assert not p2.is_mip()
    assert [c.name for c in p2.nonlinear_constraints()] == ["nl"]


def test_objective_and_feasibility():
    p = _basic()
    v = {"x": 3.0, "y": 2.0}
    assert p.objective_value(v) == 7.0
    assert p.is_feasible(v)
    assert not p.is_feasible({"x": 9.0, "y": 5.0})  # violates c1 and x<=10 ok
    assert p.max_violation({"x": 11.0, "y": 0.0}) >= 1.0  # bound violation


def test_integrality_in_max_violation():
    p = _basic()
    assert p.max_violation({"x": 0.0, "y": 2.5}) == pytest.approx(0.5)


def test_sos_violation_detected():
    p = Problem()
    p.add_variable("a", 0, 1, Domain.BINARY)
    p.add_variable("b", 0, 1, Domain.BINARY)
    p.add_sos1("s", ["a", "b"], [1.0, 2.0])
    p.set_objective(VarRef("a"))
    assert p.is_feasible({"a": 1.0, "b": 0.0})
    assert not p.is_feasible({"a": 1.0, "b": 1.0})


def test_relaxed_drops_integrality():
    p = _basic()
    r = p.relaxed()
    assert not r.is_mip()
    assert r.num_constraints == p.num_constraints
    # Original untouched.
    assert p.variable("y").domain is Domain.INTEGER


def test_with_bounds_intersects():
    p = _basic()
    q = p.with_bounds({"x": (2.0, 20.0)})
    assert q.variable("x").lb == 2.0
    assert q.variable("x").ub == 10.0  # intersect, not replace
    assert q.variable("y").domain is Domain.INTEGER
    with pytest.raises(ValueError):
        p.with_bounds({"x": (5.0, 1.0)})


def test_linear_matrix_form():
    p = _basic()
    c, c0, A, row_lb, row_ub, var_lb, var_ub = p.linear_matrix_form()
    np.testing.assert_allclose(c, [1.0, 2.0])
    assert c0 == 0.0
    np.testing.assert_allclose(A, [[1.0, 1.0]])
    assert row_ub[0] == 8.0 and row_lb[0] == -math.inf
    np.testing.assert_allclose(var_ub, [10.0, 5.0])


def test_linear_matrix_form_rejects_nonlinear():
    p = Problem()
    p.add_variable("x", 1, 5)
    p.add_constraint("nl", 1 / X, ub=1.0)
    with pytest.raises(NonlinearExpressionError):
        p.linear_matrix_form()


def test_vector_round_trip():
    p = _basic()
    values = {"x": 1.0, "y": 4.0}
    vec = values_to_vector(p, values)
    assert vector_to_values(p, vec) == values
    with pytest.raises(ValueError):
        vector_to_values(p, [1.0])


def test_repr_kinds():
    assert "MILP" in repr(_basic())
    p = Problem()
    p.add_variable("x", 1, 2)
    assert "LP" in repr(p)
    p.add_constraint("nl", 1 / X, ub=9.0)
    assert "NLP" in repr(p)
