"""Property-based tests over random expression trees.

Strategy: build a random arithmetic program as *both* a plain-Python lambda
and an :class:`Expr` tree, then check that evaluation, differentiation
(against central differences), and the simplifying constructors all agree.
This catches constructor-simplification bugs (constant folding, flattening)
that targeted unit tests might miss.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.minlp.expr import Constant, VarRef, linearize

VARS = ("x", "y")


def _leaf(draw):
    kind = draw(st.sampled_from(("var", "const")))
    if kind == "var":
        name = draw(st.sampled_from(VARS))
        return VarRef(name), (lambda env, n=name: env[n])
    value = draw(st.floats(-3.0, 3.0, allow_nan=False))
    return Constant(value), (lambda env, v=value: v)


def _tree(draw, depth):
    if depth == 0:
        return _leaf(draw)
    op = draw(st.sampled_from(("add", "sub", "mul", "div", "pow", "leaf")))
    if op == "leaf":
        return _leaf(draw)
    left_e, left_f = _tree(draw, depth - 1)
    right_e, right_f = _tree(draw, depth - 1)
    if op == "add":
        return left_e + right_e, (lambda env: left_f(env) + right_f(env))
    if op == "sub":
        return left_e - right_e, (lambda env: left_f(env) - right_f(env))
    if op == "mul":
        return left_e * right_e, (lambda env: left_f(env) * right_f(env))
    if op == "div":
        # Guard the denominator away from zero with a positive offset.
        den_e = right_e * right_e + 1.0
        return left_e / den_e, (
            lambda env: left_f(env) / (right_f(env) ** 2 + 1.0)
        )
    # pow: keep the base positive and the exponent a small constant.
    exponent = draw(st.sampled_from((2.0, 3.0, 0.5)))
    base_e = left_e * left_e + 0.5
    return base_e**exponent, (
        lambda env, p=exponent: (left_f(env) ** 2 + 0.5) ** p
    )


@st.composite
def random_program(draw):
    depth = draw(st.integers(1, 3))
    return _tree(draw, depth)


@settings(max_examples=80, deadline=None)
@given(
    prog=random_program(),
    x=st.floats(-2.0, 2.0, allow_nan=False),
    y=st.floats(-2.0, 2.0, allow_nan=False),
)
def test_tree_evaluation_matches_reference(prog, x, y):
    expr, ref = prog
    env = {"x": x, "y": y}
    expected = ref(env)
    assume(math.isfinite(expected) and abs(expected) < 1e9)
    got = expr.evaluate(env)
    assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    prog=random_program(),
    x=st.floats(-1.5, 1.5, allow_nan=False),
    y=st.floats(-1.5, 1.5, allow_nan=False),
)
def test_tree_derivative_matches_central_difference(prog, x, y):
    expr, ref = prog
    env = {"x": x, "y": y}
    base = ref(env)
    assume(math.isfinite(base) and abs(base) < 1e6)
    h = 1e-5
    for var in VARS:
        up = dict(env)
        dn = dict(env)
        up[var] += h
        dn[var] -= h
        fd = (ref(up) - ref(dn)) / (2 * h)
        assume(abs(fd) < 1e6)
        sym = expr.diff(var).evaluate(env)
        assert sym == pytest.approx(fd, rel=2e-3, abs=2e-4)


@settings(max_examples=40, deadline=None)
@given(
    prog=random_program(),
    x0=st.floats(-1.0, 1.0, allow_nan=False),
    y0=st.floats(-1.0, 1.0, allow_nan=False),
)
def test_linearization_is_tangent_everywhere(prog, x0, y0):
    """linearize(f, p) matches f's value and gradient at p for any tree."""
    expr, ref = prog
    point = {"x": x0, "y": y0}
    value = ref(point)
    assume(math.isfinite(value) and abs(value) < 1e6)
    lin = linearize(expr, point)
    assert lin.is_linear()
    assert lin.evaluate(point) == pytest.approx(expr.evaluate(point), rel=1e-9, abs=1e-9)
    for var in expr.variables():
        g_lin = lin.diff(var).evaluate(point)
        g_expr = expr.diff(var).evaluate(point)
        assume(abs(g_expr) < 1e6)
        assert g_lin == pytest.approx(g_expr, rel=1e-9, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(prog=random_program())
def test_substitution_identity(prog):
    """Substituting each variable with itself is a no-op (structural)."""
    expr, _ = prog
    mapping = {v: VarRef(v) for v in VARS}
    assert expr.substitute(mapping) == expr


@settings(max_examples=60, deadline=None)
@given(
    prog=random_program(),
    x=st.floats(-1.5, 1.5, allow_nan=False),
    y=st.floats(-1.5, 1.5, allow_nan=False),
)
def test_substitution_evaluates_like_composition(prog, x, y):
    """Substituting y := x*x then evaluating equals evaluating with y=x^2."""
    expr, ref = prog
    sub = expr.substitute({"y": VarRef("x") * VarRef("x")})
    env_direct = {"x": x, "y": x * x}
    expected = ref(env_direct)
    assume(math.isfinite(expected) and abs(expected) < 1e9)
    assert sub.evaluate({"x": x}) == pytest.approx(expected, rel=1e-9, abs=1e-9)
