"""Tests for the ECP solver and pseudocost branching."""

import pytest

from repro.minlp import solve
from repro.minlp.bnb import BnBOptions
from repro.minlp.brute import solve_brute_force
from repro.minlp.ecp import solve_minlp_ecp
from repro.minlp.milp import solve_milp
from repro.minlp.modeling import Model
from repro.minlp.oa import solve_minlp_oa
from repro.minlp.problem import Domain
from repro.minlp.solution import Status


def _alloc_problem(budget=12):
    m = Model("ecp-alloc")
    t = m.var("T", 0, 1e4)
    na = m.integer_var("na", 1, budget - 1)
    no = m.integer_var("no", 1, budget - 1)
    m.add(na + no <= budget)
    m.add(t >= 100.0 / na + 2.0)
    m.add(t >= 60.0 / no + 1.0)
    m.minimize(t)
    return m.build()


def test_ecp_matches_brute_and_oa():
    p = _alloc_problem()
    ref = solve_brute_force(p)
    ecp = solve_minlp_ecp(p)
    oa = solve_minlp_oa(p)
    assert ecp.status is Status.OPTIMAL
    assert ecp.objective == pytest.approx(ref.objective, rel=1e-5)
    assert ecp.objective == pytest.approx(oa.objective, rel=1e-5)


def test_ecp_nonlinear_objective_epigraph():
    m = Model()
    x = m.integer_var("x", 1, 20)
    m.minimize(150.0 / x + 3.0 * x)
    p = m.build()
    sol = solve_minlp_ecp(p)
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(solve_brute_force(p).objective, rel=1e-6)
    assert "_oa_eta" not in sol.values


def test_ecp_infeasible():
    m = Model()
    x = m.integer_var("x", 1, 3)
    t = m.var("t", 0, 1.0)
    m.add(t >= 10.0 / x)
    m.minimize(t)
    assert solve_minlp_ecp(m.build()).status is Status.INFEASIBLE


def test_ecp_pure_milp_passthrough():
    m = Model()
    x = m.integer_var("x", 0, 9)
    m.add(2 * x <= 11)
    m.maximize(x)
    assert solve_minlp_ecp(m.build()).objective == pytest.approx(5.0)


def test_ecp_adds_cuts_without_nlp_solves():
    sol = solve_minlp_ecp(_alloc_problem())
    assert sol.stats.cuts_added >= 1
    assert sol.stats.nlp_solves == 0  # the defining property of ECP


def test_ecp_via_dispatcher():
    sol = solve(_alloc_problem(), algorithm="ecp")
    assert sol.status is Status.OPTIMAL


def test_ecp_round_limit_reported():
    sol = solve_minlp_ecp(_alloc_problem(), max_rounds=1)
    assert sol.status in (Status.ITERATION_LIMIT, Status.OPTIMAL)


# --- pseudocost branching ----------------------------------------------------


def _hard_milp():
    """A MILP whose LP relaxation is fractional in many variables."""
    m = Model("pc")
    zs = m.var_list("z", 10, 0, 1, domain=Domain.BINARY)
    weights = [3, 5, 7, 9, 11, 13, 17, 19, 23, 29]
    values = [4, 7, 9, 12, 14, 17, 22, 25, 30, 37]
    m.add(sum(w * z for w, z in zip(weights, zs)) <= 58)
    m.maximize(sum(v * z for v, z in zip(values, zs)))
    return m.build()


def test_pseudocost_rule_correctness():
    p = _hard_milp()
    default = solve_milp(p, BnBOptions(branch_rule="most_fractional"))
    pseudo = solve_milp(p, BnBOptions(branch_rule="pseudocost"))
    assert pseudo.status is Status.OPTIMAL
    assert pseudo.objective == pytest.approx(default.objective)


def test_pseudocost_on_minlp():
    p = _alloc_problem(budget=40)
    ref = solve_brute_force(p)
    sol = solve_minlp_oa(p, BnBOptions(branch_rule="pseudocost"))
    assert sol.objective == pytest.approx(ref.objective, rel=1e-5)


def test_pseudocost_learns_history():
    from repro.minlp.bnb import BranchAndBound

    engine = BranchAndBound(_hard_milp(), "lp", BnBOptions(branch_rule="pseudocost"))
    engine.solve()
    # Some branching history must have accumulated.
    assert engine._pseudo
    for total, count in engine._pseudo.values():
        assert count >= 1 and total >= 0.0


def test_unknown_branch_rule_behaves_like_most_fractional():
    # Unknown rules fall through to the default heuristic (documented).
    p = _hard_milp()
    sol = solve_milp(p, BnBOptions(branch_rule="mystery"))
    assert sol.status is Status.OPTIMAL
