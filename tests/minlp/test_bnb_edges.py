"""Edge-path tests for the branch-and-bound engine."""

import time

import pytest

from repro.minlp.bnb import BnBOptions, BranchAndBound
from repro.minlp.milp import solve_milp
from repro.minlp.modeling import Model
from repro.minlp.oa import solve_minlp_oa
from repro.minlp.problem import Domain
from repro.minlp.solution import Status


def _knapsack(n=14, cap=23):
    m = Model("k")
    zs = m.var_list("z", n, 0, 1, domain=Domain.BINARY)
    weights = [(3 * i) % 7 + 2 for i in range(n)]
    values = [(5 * i) % 11 + 1 for i in range(n)]
    m.add(sum(w * z for w, z in zip(weights, zs)) <= cap)
    m.maximize(sum(v * z for v, z in zip(values, zs)))
    return m.build()


def test_log_callback_receives_incumbents():
    messages = []
    opts = BnBOptions(log=messages.append)
    sol = solve_milp(_knapsack(), opts)
    assert sol.status is Status.OPTIMAL
    assert any("incumbent" in m for m in messages)


def test_time_limit_returns_best_found():
    # A time limit of ~0 forces an immediate stop; with no incumbent the
    # engine must say so rather than fabricate a point.
    opts = BnBOptions(time_limit=0.0)
    sol = solve_milp(_knapsack(), opts)
    assert sol.status is Status.TIME_LIMIT
    assert not sol.values


def test_node_limit_with_incumbent_is_feasible_status():
    p = _knapsack(n=18, cap=31)
    sol = solve_milp(p, BnBOptions(node_limit=30))
    if sol.status is Status.NODE_LIMIT:
        assert not sol.values
    else:
        assert sol.status in (Status.FEASIBLE, Status.OPTIMAL)
        # A bound accompanies any returned point.
        assert sol.bound >= sol.objective - 1e-6  # maximize: bound above


def test_invalid_relax_solver_rejected():
    with pytest.raises(TypeError, match="relax_solver"):
        BranchAndBound(_knapsack(), "qp")


def test_gap_tolerances_loose_stops_early():
    p = _knapsack(n=16, cap=29)
    exact = solve_milp(p)
    loose = solve_milp(p, BnBOptions(gap_abs=5.0))
    # A loose gap may stop at a slightly worse incumbent but never a better one.
    assert loose.objective <= exact.objective + 1e-9
    assert loose.objective >= exact.objective - 5.0 - 1e-9


def test_oa_respects_time_limit_mid_tree():
    # Convex MINLP with a moderately large integer grid; a tiny time limit
    # must terminate promptly and report honestly.
    m = Model()
    t = m.var("T", 0, 1e6)
    ns = [m.integer_var(f"n{i}", 1, 2000) for i in range(6)]
    m.add(sum(ns) <= 4000)
    for i, n in enumerate(ns):
        m.add(t >= (1000.0 * (i + 1)) / n + 0.1 * i)
    m.minimize(t)
    start = time.perf_counter()
    sol = solve_minlp_oa(m.build(), BnBOptions(time_limit=0.5))
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0
    assert sol.status in (Status.OPTIMAL, Status.FEASIBLE, Status.TIME_LIMIT)
    if sol.status.is_ok:
        # Any reported point must be genuinely feasible.
        for i, n in enumerate(ns):
            assert sol.values[f"n{i}"] >= 1


def test_maximize_with_sos_branching():
    m = Model()
    zs = m.var_list("z", 5, 0, 1, domain=Domain.BINARY)
    vals = [3.0, 9.0, 4.0, 7.0, 5.0]
    m.add_equals(sum(zs), 1)
    m.sos1(zs)
    m.maximize(sum(v * z for v, z in zip(vals, zs)))
    sol = solve_milp(m.build())
    assert sol.status is Status.OPTIMAL
    assert sol.objective == pytest.approx(9.0)
    assert sol.values["z[1]"] == pytest.approx(1.0)
