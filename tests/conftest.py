"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import default_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return default_rng(12345)
