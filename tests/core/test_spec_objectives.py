"""Tests for allocation/application abstractions and the §III-D objectives."""

import pytest

from repro.core.objectives import Objective, apply_objective, evaluate_objective
from repro.core.spec import Allocation, ExecutionResult
from repro.minlp.modeling import Model
from repro.minlp.nlp import solve_nlp
from repro.minlp.problem import Sense


def test_allocation_normalizes_to_int():
    a = Allocation({"x": 3.0, "y": 4.2})
    assert a["x"] == 3 and a["y"] == 4
    assert isinstance(a["x"], int)


def test_allocation_rejects_nonpositive():
    with pytest.raises(ValueError):
        Allocation({"x": 0})


def test_allocation_views():
    a = Allocation({"x": 1, "y": 2})
    assert a.components == ("x", "y")
    assert a.total() == 3
    assert dict(a.items()) == {"x": 1, "y": 2}
    assert list(iter(a)) == ["x", "y"]
    assert "Allocation" in repr(a)


def test_execution_result_validation():
    with pytest.raises(ValueError):
        ExecutionResult({"x": -1.0}, 1.0)
    with pytest.raises(ValueError):
        ExecutionResult({"x": 1.0}, -1.0)
    r = ExecutionResult({"x": 1.0}, 2.0, metadata={"k": 1})
    assert r.metadata["k"] == 1


# --- objectives ------------------------------------------------------------


def _times_model():
    m = Model("obj")
    n1 = m.var("n1", 1, 10)
    n2 = m.var("n2", 1, 10)
    m.add(n1 + n2 <= 10)
    exprs = {"a": 100.0 / n1 + 1.0, "b": 50.0 / n2 + 2.0}
    return m, exprs


def test_min_max_balances_components():
    m, exprs = _times_model()
    t = apply_objective(m, Objective.MIN_MAX, exprs, time_upper_bound=1e4)
    assert t is not None
    sol = solve_nlp(m.build())
    ta = 100.0 / sol.values["n1"] + 1.0
    tb = 50.0 / sol.values["n2"] + 2.0
    assert sol.objective == pytest.approx(max(ta, tb), rel=1e-5)
    assert ta == pytest.approx(tb, rel=1e-2)  # balanced at the optimum


def test_max_min_sense():
    m, exprs = _times_model()
    apply_objective(m, Objective.MAX_MIN, exprs, time_upper_bound=1e4)
    p = m.build()
    assert p.sense is Sense.MAXIMIZE
    names = {c.name for c in p.constraints}
    assert "maxmin_a" in names and "maxmin_b" in names


def test_min_sum_no_epigraph():
    m, exprs = _times_model()
    t = apply_objective(m, Objective.MIN_SUM, exprs, time_upper_bound=1e4)
    assert t is None
    sol = solve_nlp(m.build())
    # min-sum puts nodes where the marginal gain is biggest, not where the
    # max is; the sum should equal the objective.
    total = (100.0 / sol.values["n1"] + 1.0) + (50.0 / sol.values["n2"] + 2.0)
    assert sol.objective == pytest.approx(total, rel=1e-6)


def test_apply_objective_validation():
    m = Model()
    with pytest.raises(ValueError, match="no component"):
        apply_objective(m, Objective.MIN_MAX, {}, time_upper_bound=1.0)


def test_evaluate_objective():
    times = {"a": 3.0, "b": 7.0}
    assert evaluate_objective(Objective.MIN_MAX, times) == 7.0
    assert evaluate_objective(Objective.MAX_MIN, times) == 3.0
    assert evaluate_objective(Objective.MIN_SUM, times) == 10.0
    with pytest.raises(ValueError):
        evaluate_objective(Objective.MIN_MAX, {})
