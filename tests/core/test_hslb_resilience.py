"""Tests for the resilient gather / solver chain / crash recovery paths."""

import numpy as np
import pytest

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.core.builder import AllocationModelBuilder
from repro.core.hslb import (
    GatherDegradedError,
    GatherPolicy,
    HSLBConfig,
    HSLBOptimizer,
)
from repro.core.objectives import Objective
from repro.core.spec import Allocation, Application, ExecutionResult
from repro.faults import BenchmarkFault, BenchmarkRunError, FaultPlan
from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

MODELS = {
    "alpha": PerformanceModel(a=400.0, d=2.0),
    "beta": PerformanceModel(a=900.0, d=1.0),
}


class ScriptedApp(Application):
    """Two Amdahl components with scripted gather failures.

    ``script`` maps (node_count, attempt) -> fault kind; those benchmark
    runs raise, everything else returns exact (noise-free) timings.
    """

    def __init__(self, script=None, solver_stall=()):
        self.script = dict(script or {})
        self.fault_plan = FaultPlan(seed=0, solver_stall=tuple(solver_stall))
        self.executed = []

    @property
    def component_names(self):
        return ("alpha", "beta")

    def benchmark(self, node_counts, rng):
        suite = BenchmarkSuite()
        for count in node_counts:
            for name, model in MODELS.items():
                suite.add(
                    ComponentBenchmark(
                        name, [ScalingObservation(count, float(model.time(count)))]
                    )
                )
        return suite

    def benchmark_run(self, node_count, rng, *, attempt=0, probe_extremes=False):
        kind = self.script.get((int(node_count), int(attempt)))
        if kind is not None:
            raise BenchmarkRunError(
                BenchmarkFault(kind, "scripted", int(node_count), int(attempt))
            )
        return self.benchmark([int(node_count)], rng)

    def formulate(self, models, total_nodes):
        b = AllocationModelBuilder("scripted", total_nodes)
        for name in self.component_names:
            b.add_component(name, models[name])
        b.limit_total_nodes()
        b.set_objective(Objective.MIN_MAX)
        return b.build()

    def allocation_from_solution(self, solution):
        return Allocation(
            {
                name: int(round(solution.values[f"n_{name}"]))
                for name in self.component_names
            }
        )

    def execute(self, allocation, rng):
        self.executed.append(allocation)
        times = {
            name: float(MODELS[name].time(allocation[name]))
            for name in self.component_names
        }
        return ExecutionResult(component_times=times, total_time=max(times.values()))


def test_gather_retries_transient_failure():
    app = ScriptedApp(script={(32, 0): "failure", (32, 1): "timeout"})
    opt = HSLBOptimizer(app)
    suite = opt.gather([16, 32, 64], default_rng(0))
    # The point survived: two retries, then success.
    assert sorted(o.nodes for o in suite["alpha"]) == [16, 32, 64]
    report = opt.last_gather_report
    assert report.retried_counts == (32,)
    assert report.dropped_counts == ()
    [record] = report.records
    assert record.attempts == 3
    assert record.kinds == ("failure", "timeout")
    # Capped exponential backoff: 2s after attempt 0, 4s after attempt 1.
    assert record.backoff_seconds == pytest.approx(6.0)
    # Surviving observations carry their retry count.
    recovered = [o for o in suite["alpha"] if o.nodes == 32]
    assert all(o.retries == 2 for o in recovered)
    assert all(o.retries == 0 for o in suite["alpha"] if o.nodes != 32)


def test_gather_drops_permanent_point_and_warns():
    app = ScriptedApp(script={(32, a): "permanent" for a in range(5)})
    opt = HSLBOptimizer(app)
    suite = opt.gather([16, 32, 64], default_rng(0))
    assert sorted(o.nodes for o in suite["alpha"]) == [16, 64]
    report = opt.last_gather_report
    assert report.dropped_counts == (32,)
    # Permanent faults do not burn retries: one attempt, no backoff.
    [record] = report.records
    assert record.attempts == 1
    assert record.backoff_seconds == 0.0
    assert any("thinned" in w for w in report.warnings)
    # The thinned campaign still fits and solves.
    fits = opt.fit(suite, default_rng(0))
    allocation, solution = opt.solve(fits, 64, default_rng(0))
    assert solution.status.is_ok


def test_gather_exhausted_retries_drop_the_point():
    policy = GatherPolicy(max_retries=2)
    app = ScriptedApp(script={(32, a): "failure" for a in range(3)})
    opt = HSLBOptimizer(app, HSLBConfig(gather=policy))
    suite = opt.gather([16, 32, 64], default_rng(0))
    assert sorted(o.nodes for o in suite["alpha"]) == [16, 64]
    [record] = opt.last_gather_report.records
    assert record.outcome == "dropped"
    assert record.attempts == 3  # initial try + 2 retries
    # Backoff accrues only before an attempt that actually happens.
    assert record.backoff_seconds == pytest.approx(2.0 + 4.0)


def test_gather_degraded_error_when_unfittable():
    app = ScriptedApp(
        script={(c, a): "permanent" for c in (32, 64) for a in range(5)}
    )
    opt = HSLBOptimizer(app)
    with pytest.raises(GatherDegradedError) as exc:
        opt.gather([16, 32, 64], default_rng(0))
    err = exc.value
    assert set(err.reasons) == {"alpha", "beta"}
    assert "fitter needs >= 2" in err.reasons["alpha"]
    assert err.report.dropped_counts == (32, 64)


def test_gather_degraded_error_when_everything_dies():
    app = ScriptedApp(
        script={(c, a): "permanent" for c in (16, 32, 64) for a in range(5)}
    )
    with pytest.raises(GatherDegradedError, match="no surviving benchmark runs"):
        HSLBOptimizer(app).gather([16, 32, 64], default_rng(0))


def test_backoff_is_capped():
    policy = GatherPolicy(max_retries=10, backoff_base=2.0, backoff_cap=16.0)
    assert policy.backoff(0) == 2.0
    assert policy.backoff(3) == 16.0
    assert policy.backoff(9) == 16.0
    with pytest.raises(ValueError):
        GatherPolicy(backoff_base=0.0)
    with pytest.raises(ValueError):
        GatherPolicy(max_retries=-1)


def test_clean_gather_uses_single_call_path():
    """With no fault plan, gather must stay on the original one-shot
    benchmark call — the RNG stream (and every Table III number) depends
    on it."""
    app = ScriptedApp()
    app.fault_plan = None
    calls = []
    original = app.benchmark

    def counting(counts, rng):
        calls.append(tuple(counts))
        return original(counts, rng)

    app.benchmark = counting
    opt = HSLBOptimizer(app)
    opt.gather([16, 32, 64], default_rng(0))
    assert calls == [(16, 32, 64)]
    assert not opt.last_gather_report.degraded


def test_solver_chain_falls_back_to_nlpbb():
    app = ScriptedApp(solver_stall=("oa",))
    opt = HSLBOptimizer(app)
    suite = opt.gather([16, 32, 64], default_rng(0))
    fits = opt.fit(suite, default_rng(0))
    allocation, solution = opt.solve(fits, 64, default_rng(0))
    assert solution.status.is_ok
    prov = opt.last_provenance
    assert prov.tier == "nlpbb"
    assert prov.degraded
    assert [a.tier for a in prov.attempts] == ["oa", "nlpbb"]
    assert prov.attempts[0].status == "stalled"
    assert prov.attempts[1].status == "ok"


def test_solver_chain_greedy_fallback_records_tier():
    app = ScriptedApp(solver_stall=("oa", "nlpbb"))
    opt = HSLBOptimizer(app)
    suite = opt.gather([16, 32, 64], default_rng(0))
    fits = opt.fit(suite, default_rng(0))
    allocation, solution = opt.solve(fits, 64, default_rng(0))
    prov = opt.last_provenance
    assert prov.tier == "greedy"
    assert "all MINLP tiers failed" in prov.reason
    assert solution.status.is_ok  # FEASIBLE: usable, not certified optimal
    assert "fallback" in solution.message
    # The fallback allocation is feasible and near the MINLP optimum for
    # this convex min-max instance (greedy is exact up to integrality).
    assert allocation.total() <= 64
    result = opt.run_from_fits(fits, 64, default_rng(0))
    assert result.solver_tier == "greedy"
    assert result.degraded


def test_solver_wall_budget_exhaustion_skips_tiers():
    app = ScriptedApp()
    opt = HSLBOptimizer(app, HSLBConfig(solver_wall_budget=1e-12))
    suite = opt.gather([16, 32, 64], default_rng(0))
    fits = opt.fit(suite, default_rng(0))
    # Budget gone before any tier starts: straight to greedy, reasons say so.
    allocation, solution = opt.solve(fits, 64, default_rng(0))
    prov = opt.last_provenance
    assert prov.tier == "greedy"
    assert all(a.status == "skipped" for a in prov.attempts)
    assert all("budget" in a.reason for a in prov.attempts)


def test_run_threads_provenance_and_report():
    app = ScriptedApp(script={(32, 0): "failure"})
    opt = HSLBOptimizer(app)
    result = opt.run([16, 32, 64], 64, default_rng(0))
    assert result.gather_report is not None
    assert result.gather_report.retried_counts == (32,)
    assert result.provenance is not None
    assert result.solver_tier == "oa"
    assert result.degraded  # gather had to retry
    assert result.execution is not None


def test_cesm_crash_recovery_end_to_end():
    plan = FaultPlan(seed=11, crash_component="ocn", crash_fraction=0.5)
    app = CESMApplication(one_degree(), faults=plan)
    opt = HSLBOptimizer(app)
    result = opt.run([32, 64, 128, 256], 128, default_rng(2))
    rec = result.recovery
    assert rec is not None
    assert rec.component == "ocn"
    assert rec.lost_nodes == rec.original_allocation["ocn"]
    assert rec.wasted_seconds > 0
    # The re-planned allocation fits the surviving machine.
    surviving = 128 - rec.lost_nodes
    assert result.allocation["atm"] + result.allocation["ocn"] <= surviving
    assert result.execution.metadata.get("recovered_from_crash")
    # The restart penalty is charged on both predicted and actual totals.
    assert result.predicted_total > float(result.solution.objective)
    assert result.degraded
    # The crash fires once: the re-run completed on the survivors.
    assert "recovery" in rec.summary()


def test_fault_free_cesm_pipeline_is_unchanged():
    """A CESM app without a fault plan must report a clean, non-degraded
    run with the first-choice tier."""
    app = CESMApplication(one_degree())
    result = HSLBOptimizer(app).run([32, 64, 128, 256], 128, default_rng(2))
    assert result.recovery is None
    assert result.solver_tier == "oa"
    assert not result.degraded
    assert not result.gather_report.degraded


def test_fit_skip_degenerate_records_warning():
    app = ScriptedApp()
    opt = HSLBOptimizer(app, HSLBConfig(fit_skip_degenerate=True))
    suite = opt.gather([16, 32, 64], default_rng(0))
    # Starve one component below the fitter's minimum.
    crippled = BenchmarkSuite()
    crippled.add(ComponentBenchmark("alpha", list(suite["alpha"])))
    crippled.add(ComponentBenchmark("beta", [list(suite["beta"])[0]]))
    fits = opt.fit(crippled, default_rng(0))
    assert set(fits) == {"alpha"}
    assert any("skipped 'beta'" in w for w in opt.last_gather_report.warnings)


def test_stragglers_are_pruned_before_fitting():
    suite = BenchmarkSuite()
    counts = (16, 32, 64, 128)
    good = [ScalingObservation(c, float(MODELS["alpha"].time(c))) for c in counts]
    bad = ScalingObservation(32, 40 * float(MODELS["alpha"].time(32)), status="straggler")
    suite.add(ComponentBenchmark("alpha", good + [bad]))
    suite.add(
        ComponentBenchmark(
            "beta", [ScalingObservation(c, float(MODELS["beta"].time(c))) for c in counts]
        )
    )
    app = ScriptedApp()
    fits = HSLBOptimizer(app).fit(suite, default_rng(0))
    # With the inflated point pruned, the noise-free fit is near-exact.
    assert fits["alpha"].model.time(64) == pytest.approx(
        float(MODELS["alpha"].time(64)), rel=1e-3
    )
    kept = HSLBOptimizer(app, HSLBConfig(prune_stragglers=False)).fit(
        suite, default_rng(0)
    )
    assert abs(kept["alpha"].model.time(64) - float(MODELS["alpha"].time(64))) > (
        abs(fits["alpha"].model.time(64) - float(MODELS["alpha"].time(64)))
    )


def test_fmo_pipeline_crash_recovery_metadata():
    from repro.fmo.app import FMOApplication
    from repro.fmo.molecules import water_cluster

    plan = FaultPlan(seed=3, crash_group=0, crash_fraction=0.4)
    app = FMOApplication(water_cluster(6, default_rng(1)), faults=plan)
    result = HSLBOptimizer(app).run([1, 2, 4, 8], 48, default_rng(5))
    meta = result.execution.metadata
    assert meta["crash_group"] == 0
    assert meta["recovery_strategy"] == "replan"
    assert meta["fault_free_makespan"] > 0
    assert result.execution.total_time >= meta["fault_free_makespan"] * 0.999
