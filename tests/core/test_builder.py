"""Tests for the allocation-model builder."""

import pytest

from repro.core.builder import AllocationModelBuilder, DiscreteNodeSet
from repro.core.objectives import Objective
from repro.minlp import solve
from repro.minlp.brute import solve_brute_force
from repro.minlp.problem import Domain
from repro.perf.model import PerformanceModel

M1 = PerformanceModel(a=100.0, d=2.0)
M2 = PerformanceModel(a=60.0, d=1.0)


def test_total_nodes_validation():
    with pytest.raises(ValueError):
        AllocationModelBuilder("x", 0)


def test_plain_integer_component():
    b = AllocationModelBuilder("x", 16)
    n = b.add_component("a", M1)
    p = b.model.build()
    var = p.variable("n_a")
    assert var.domain is Domain.INTEGER
    assert var.lb == 1.0 and var.ub == 16.0


def test_duplicate_component_rejected():
    b = AllocationModelBuilder("x", 16)
    b.add_component("a", M1)
    with pytest.raises(ValueError, match="duplicate"):
        b.add_component("a", M2)


def test_min_max_nodes_respected():
    b = AllocationModelBuilder("x", 64)
    b.add_component("a", M1, min_nodes=4, max_nodes=32)
    var = b.model.build().variable("n_a")
    assert var.lb == 4.0 and var.ub == 32.0


def test_contiguous_allowed_set_needs_no_binaries():
    b = AllocationModelBuilder("x", 64)
    b.add_component("a", M1, allowed=DiscreteNodeSet.contiguous(2, 20))
    p = b.model.build()
    assert p.num_variables == 1
    assert not p.sos1_sets


def test_gappy_allowed_set_builds_sos():
    b = AllocationModelBuilder("x", 64)
    b.add_component("a", M1, allowed=DiscreteNodeSet((2, 4, 8, 16)))
    p = b.model.build()
    assert "sos_a" in {s.name for s in p.sos1_sets}
    assert sum(1 for v in p.variables if v.name.startswith("z_a")) == 4


def test_allowed_set_trimmed_by_machine():
    b = AllocationModelBuilder("x", 10)
    b.add_component("a", M1, allowed=DiscreteNodeSet((2, 4, 8, 16, 32)))
    p = b.model.build()
    # 16 and 32 exceed the machine; 3 usable values remain.
    assert sum(1 for v in p.variables if v.name.startswith("z_a")) == 3
    assert p.variable("n_a").ub == 8.0


def test_allowed_set_empty_after_trim_rejected():
    b = AllocationModelBuilder("x", 4)
    with pytest.raises(ValueError, match="no admissible"):
        b.add_component("a", M1, allowed=DiscreteNodeSet((8, 16)))


def test_sos_set_enforced_in_solve():
    b = AllocationModelBuilder("x", 64)
    b.add_component("a", M1, allowed=DiscreteNodeSet((2, 5, 11, 23)))
    b.limit_total_nodes()
    b.set_objective(Objective.MIN_MAX)
    sol = solve(b.build()).require_ok()
    assert round(sol.values["n_a"]) in (2, 5, 11, 23)
    # More nodes help a decreasing curve: the largest admissible value wins.
    assert round(sol.values["n_a"]) == 23


def test_solution_matches_brute_force_on_sos_model():
    b = AllocationModelBuilder("x", 24)
    b.add_component("a", M1, allowed=DiscreteNodeSet((2, 6, 14)))
    b.add_component("b", M2)
    b.limit_total_nodes()
    b.set_objective(Objective.MIN_MAX)
    p = b.build()
    assert solve(p).require_ok().objective == pytest.approx(
        solve_brute_force(p).objective, rel=1e-5
    )


def test_exact_budget_constraint():
    b = AllocationModelBuilder("x", 12)
    b.add_component("a", M1)
    b.add_component("b", M2)
    b.limit_total_nodes(exact=True)
    b.set_objective(Objective.MIN_MAX)
    sol = solve(b.build()).require_ok()
    assert round(sol.values["n_a"] + sol.values["n_b"]) == 12


def test_limit_total_nodes_requires_components():
    b = AllocationModelBuilder("x", 8)
    with pytest.raises(ValueError, match="no components"):
        b.limit_total_nodes()


def test_objective_installed_once():
    b = AllocationModelBuilder("x", 8)
    b.add_component("a", M1)
    b.set_objective()
    with pytest.raises(RuntimeError):
        b.set_objective()


def test_time_expr_and_views():
    b = AllocationModelBuilder("x", 8)
    b.add_component("a", M1)
    assert b.components == ("a",)
    assert b.perf_model("a") is M1
    e = b.time_expr("a")
    assert e.evaluate({"n_a": 4.0}) == pytest.approx(M1.time(4))
    assert b.time_upper_bound() >= M1.time(1)
