"""Tests for the §IV-C prediction applications."""

import pytest

from repro.cesm.grids import one_degree
from repro.cesm.layouts import Layout, formulate_layout
from repro.core.predictor import (
    ScalingSweep,
    compare_layouts,
    component_swap_effect,
    optimal_job_size,
    sweep_machine_sizes,
)
from repro.perf.model import PerformanceModel

MODELS = {
    "lnd": PerformanceModel(a=1483.0, d=2.1),
    "ice": PerformanceModel(a=7600.0, d=11.0),
    "atm": PerformanceModel(a=27380.0, d=43.0),
    "ocn": PerformanceModel(a=7550.0, d=45.0),
}

NODE_COUNTS = (128, 256, 512, 1024, 2048)


def _layout_formulator(layout):
    def formulator(models, total_nodes):
        return formulate_layout(models, total_nodes, one_degree(), layout=layout)

    return formulator


@pytest.fixture(scope="module")
def hybrid_sweep():
    return sweep_machine_sizes(MODELS, _layout_formulator(Layout.HYBRID), NODE_COUNTS)


def test_sweep_monotone_decreasing(hybrid_sweep):
    totals = hybrid_sweep.totals
    assert all(totals[i + 1] < totals[i] for i in range(len(totals) - 1))


def test_sweep_derived_metrics(hybrid_sweep):
    s = hybrid_sweep
    assert s.speedup()[0] == 1.0
    assert s.speedup()[-1] > 2.0
    eff = s.efficiency()
    assert eff[0] == pytest.approx(1.0)
    assert all(eff[i + 1] < eff[i] + 1e-9 for i in range(len(eff) - 1))
    assert len(s.marginal_gain()) == len(NODE_COUNTS) - 1
    assert "efficiency" in s.render()


def test_sweep_validation():
    with pytest.raises(ValueError, match="length"):
        ScalingSweep((1, 2), (1.0,))
    with pytest.raises(ValueError, match="two machine sizes"):
        ScalingSweep((1,), (1.0,))


def test_optimal_job_size_tradeoff(hybrid_sweep):
    rec = optimal_job_size(
        MODELS,
        _layout_formulator(Layout.HYBRID),
        NODE_COUNTS,
        efficiency_floor=0.5,
    )
    # Cost-efficient size never exceeds the shortest-time size; both in sweep.
    assert rec.cost_efficient_nodes in NODE_COUNTS
    assert rec.shortest_time_nodes in NODE_COUNTS
    assert rec.cost_efficient_nodes <= rec.shortest_time_nodes
    # With Amdahl floors the shortest-time size is the biggest machine.
    assert rec.shortest_time_nodes == 2048
    assert "cost-efficient choice" in rec.render()


def test_optimal_job_size_floor_monotone():
    loose = optimal_job_size(
        MODELS, _layout_formulator(Layout.HYBRID), NODE_COUNTS, efficiency_floor=0.3
    )
    strict = optimal_job_size(
        MODELS, _layout_formulator(Layout.HYBRID), NODE_COUNTS, efficiency_floor=0.9
    )
    assert strict.cost_efficient_nodes <= loose.cost_efficient_nodes


def test_optimal_job_size_validation():
    with pytest.raises(ValueError, match="efficiency_floor"):
        optimal_job_size(
            MODELS, _layout_formulator(Layout.HYBRID), NODE_COUNTS,
            efficiency_floor=0.0,
        )


def test_compare_layouts_ordering():
    sweeps = compare_layouts(
        MODELS,
        {
            "layout1": _layout_formulator(Layout.HYBRID),
            "layout3": _layout_formulator(Layout.FULLY_SEQUENTIAL),
        },
        (128, 512, 2048),
    )
    for i in range(3):
        assert sweeps["layout1"].totals[i] < sweeps["layout3"].totals[i]


def test_component_swap_effect():
    # A rewritten ocean model, 2x more scalable work-wise.
    faster_ocn = PerformanceModel(a=7550.0 / 2, d=20.0)
    base, swapped = component_swap_effect(
        MODELS,
        _layout_formulator(Layout.HYBRID),
        (128, 512),
        replace={"ocn": faster_ocn},
    )
    # A faster ocean can only help (it is on the concurrent side).
    assert all(s <= b + 1e-9 for s, b in zip(swapped.totals, base.totals))
    with pytest.raises(ValueError, match="unknown components"):
        component_swap_effect(
            MODELS,
            _layout_formulator(Layout.HYBRID),
            (128,),
            replace={"warp": faster_ocn},
        )
