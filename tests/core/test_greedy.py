"""The specialized greedy min-max allocator must agree with the MINLP route."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import AllocationModelBuilder
from repro.core.greedy import greedy_minmax_allocation, minmax_lower_bound
from repro.core.objectives import Objective
from repro.minlp import solve
from repro.perf.model import PerformanceModel


def test_basic_allocation():
    models = {
        "big": PerformanceModel(a=1000.0, d=1.0),
        "small": PerformanceModel(a=100.0, d=1.0),
    }
    alloc, makespan = greedy_minmax_allocation(models, 22)
    assert alloc["big"] + alloc["small"] <= 22
    assert alloc["big"] > alloc["small"]
    # 10:1 work ratio -> roughly 10:1 nodes (20, 2).
    assert alloc["big"] == pytest.approx(20, abs=1)
    assert makespan == pytest.approx(
        max(models[k].time(v) for k, v in alloc.items())
    )


def test_validation():
    with pytest.raises(ValueError, match="no components"):
        greedy_minmax_allocation({}, 4)
    with pytest.raises(ValueError, match="cannot give"):
        greedy_minmax_allocation({"a": PerformanceModel(a=1.0)}, 0)


def test_caps_at_curve_minimum():
    # Curve minimum at n* = sqrt(100/0.1) ~ 31.6; granting more would slow it.
    models = {"u": PerformanceModel(a=100.0, b=0.1, c=1.0, d=0.0)}
    alloc, _ = greedy_minmax_allocation(models, 1000)
    assert alloc["u"] <= 32


def test_matches_minlp_small():
    models = {
        "a": PerformanceModel(a=100.0, d=2.0),
        "b": PerformanceModel(a=60.0, d=1.0),
        "c": PerformanceModel(a=250.0, d=3.0),
    }
    alloc, makespan = greedy_minmax_allocation(models, 30)
    builder = AllocationModelBuilder("x", 30)
    for name, m in models.items():
        builder.add_component(name, m)
    builder.limit_total_nodes()
    builder.set_objective(Objective.MIN_MAX)
    sol = solve(builder.build()).require_ok()
    assert makespan == pytest.approx(sol.objective, rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(
    seeds=st.lists(
        st.tuples(st.floats(10.0, 2000.0), st.floats(0.0, 5.0)),
        min_size=2,
        max_size=4,
    ),
    budget=st.integers(8, 64),
)
def test_greedy_optimal_property(seeds, budget):
    """Property: greedy equals the MINLP optimum on random decreasing curves."""
    models = {
        f"c{i}": PerformanceModel(a=a, d=d) for i, (a, d) in enumerate(seeds)
    }
    if budget < len(models):
        budget = len(models)
    alloc, makespan = greedy_minmax_allocation(models, budget)
    builder = AllocationModelBuilder("x", budget)
    for name, m in models.items():
        builder.add_component(name, m)
    builder.limit_total_nodes()
    builder.set_objective(Objective.MIN_MAX)
    sol = solve(builder.build()).require_ok()
    assert makespan == pytest.approx(sol.objective, rel=1e-5, abs=1e-7)


def test_lower_bound_below_greedy():
    models = {
        "a": PerformanceModel(a=100.0, d=2.0),
        "b": PerformanceModel(a=60.0, b=0.05, c=1.0, d=1.0),
    }
    lb = minmax_lower_bound(models, 20)
    _, makespan = greedy_minmax_allocation(models, 20)
    assert lb <= makespan + 1e-9
    # The continuous bound should be reasonably tight.
    assert lb >= 0.7 * makespan
