"""End-to-end observability: pipeline spans, solver telemetry, provenance.

Uses a scripted two-component application (exact Amdahl timings, optional
injected solver stalls) so the traces are fast and deterministic.
"""

import pytest

from repro.core.builder import AllocationModelBuilder
from repro.core.hslb import HSLBOptimizer
from repro.core.objectives import Objective
from repro.core.spec import Allocation, Application, ExecutionResult
from repro.faults import FaultPlan
from repro.obs.metrics import REGISTRY
from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

MODELS = {
    "alpha": PerformanceModel(a=400.0, d=2.0),
    "beta": PerformanceModel(a=900.0, d=1.0),
}


class TwoComponentApp(Application):
    def __init__(self, solver_stall=()):
        self.fault_plan = (
            FaultPlan(seed=0, solver_stall=tuple(solver_stall))
            if solver_stall
            else None
        )

    @property
    def component_names(self):
        return ("alpha", "beta")

    def benchmark(self, node_counts, rng):
        suite = BenchmarkSuite()
        for count in node_counts:
            for name, model in MODELS.items():
                suite.add(
                    ComponentBenchmark(
                        name, [ScalingObservation(count, float(model.time(count)))]
                    )
                )
        return suite

    def formulate(self, models, total_nodes):
        b = AllocationModelBuilder("two-comp", total_nodes)
        for name in self.component_names:
            b.add_component(name, models[name])
        b.limit_total_nodes()
        b.set_objective(Objective.MIN_MAX)
        return b.build()

    def allocation_from_solution(self, solution):
        return Allocation(
            {
                name: int(round(solution.values[f"n_{name}"]))
                for name in self.component_names
            }
        )

    def execute(self, allocation, rng):
        times = {
            name: float(MODELS[name].time(allocation[name]))
            for name in self.component_names
        }
        return ExecutionResult(component_times=times, total_time=max(times.values()))


def _counter(name, **labels):
    return REGISTRY.counter(name).value(**labels)


def test_traced_run_covers_every_pipeline_stage(tracer):
    HSLBOptimizer(TwoComponentApp()).run([16, 32, 64], 64, default_rng(0))
    root = tracer.find("hslb.run")
    assert root is not None
    stages = [c.name for c in root.children]
    assert stages == ["hslb.gather", "hslb.fit", "hslb.solve", "hslb.execute"]
    # The solve stage carries tier/status provenance tags and the MINLP span.
    solve = root.find("hslb.solve")
    assert solve.tags["tier"] == "oa"
    assert solve.tags["status"] in ("optimal", "feasible")
    assert solve.find("minlp.oa") is not None
    # Per-component fits show up under the fit stage.
    fit = root.find("hslb.fit")
    components = sorted(
        c.tags["component"] for c in fit.children if c.name == "fit.component"
    )
    assert components == ["alpha", "beta"]


def test_oa_span_records_iteration_events(tracer):
    HSLBOptimizer(TwoComponentApp()).run(
        [16, 32, 64], 64, default_rng(0), execute=False
    )
    oa = tracer.find("minlp.oa")
    iterations = [e for e in oa.events if e["name"] == "oa.iteration"]
    assert iterations, "the lazy-cut callback must emit per-iteration events"
    assert all("cuts" in e and "subproblem" in e for e in iterations)
    finished = [e for e in oa.events if e["name"] == "solver.finished"]
    assert len(finished) == 1
    assert finished[0]["algorithm"] == "oa"


def test_solver_telemetry_counters_accumulate(tracer):
    before = _counter("solver_nlp_solves_total", algorithm="oa")
    runs_before = _counter("hslb_pipeline_runs_total")
    HSLBOptimizer(TwoComponentApp()).run(
        [16, 32, 64], 64, default_rng(0), execute=False
    )
    assert _counter("solver_nlp_solves_total", algorithm="oa") > before
    assert _counter("hslb_pipeline_runs_total") == runs_before + 1
    assert REGISTRY.histogram("solver_wall_seconds").count(
        algorithm="oa", status="optimal"
    ) >= 1


def test_degradation_chain_emits_one_event_per_transition(tracer):
    opt = HSLBOptimizer(TwoComponentApp(solver_stall=("oa", "nlpbb")))
    before = {
        ("oa", "nlpbb"): _counter(
            "hslb_degradations_total", from_tier="oa", to_tier="nlpbb"
        ),
        ("nlpbb", "greedy"): _counter(
            "hslb_degradations_total", from_tier="nlpbb", to_tier="greedy"
        ),
    }
    result = opt.run([16, 32, 64], 64, default_rng(0), execute=False)
    assert result.solver_tier == "greedy"
    # Counters: exactly one bump per transition in the chain.
    assert (
        _counter("hslb_degradations_total", from_tier="oa", to_tier="nlpbb")
        == before[("oa", "nlpbb")] + 1
    )
    assert (
        _counter("hslb_degradations_total", from_tier="nlpbb", to_tier="greedy")
        == before[("nlpbb", "greedy")] + 1
    )
    # Trace: one solver.degraded event per transition, carrying the reason.
    solve = tracer.find("hslb.solve")
    degraded = [e for e in solve.events if e["name"] == "solver.degraded"]
    assert [(e["from_tier"], e["to_tier"]) for e in degraded] == [
        ("oa", "nlpbb"),
        ("nlpbb", "greedy"),
    ]
    assert all(e["reason"] == "injected solver stall" for e in degraded)
    # The injected stalls were recorded as faults too.
    stalls = [e for e in solve.events if e["name"] == "fault.injected"]
    assert len(stalls) == 2


def test_degradation_event_carries_the_triggering_exception(tracer):
    opt = HSLBOptimizer(TwoComponentApp())
    original = opt._solve_tier

    def failing(tier, *args, **kwargs):
        if tier == "oa":
            raise RuntimeError("synthetic oa blow-up")
        return original(tier, *args, **kwargs)

    opt._solve_tier = failing
    result = opt.run([16, 32, 64], 64, default_rng(0), execute=False)
    assert result.solver_tier == "nlpbb"
    solve = tracer.find("hslb.solve")
    [event] = [e for e in solve.events if e["name"] == "solver.degraded"]
    assert event["from_tier"] == "oa" and event["to_tier"] == "nlpbb"
    assert event["status"] == "error"
    assert event["reason"] == "RuntimeError: synthetic oa blow-up"


def test_fault_plan_records_injected_gather_faults():
    plan = FaultPlan(seed=3, fail_rate=0.9)
    before = _counter("faults_injected_total", kind="failure", stage="gather")
    fired = 0
    for nodes in (8, 16, 32, 64, 128):
        try:
            plan.check_benchmark("probe", nodes, 0)
        except Exception:
            fired += 1
    assert fired > 0
    assert (
        _counter("faults_injected_total", kind="failure", stage="gather")
        == before + fired
    )


def test_straggler_fires_are_counted():
    plan = FaultPlan(seed=1, straggler_rate=0.8)
    before = _counter("faults_injected_total", kind="straggler", stage="gather")
    fired = sum(
        1
        for unit in range(20)
        if plan.straggler_multiplier("probe", unit, 64) > 1.0
    )
    assert fired > 0
    assert (
        _counter("faults_injected_total", kind="straggler", stage="gather")
        == before + fired
    )


def test_disabled_tracer_changes_nothing_about_results():
    """Determinism contract: tracing must not perturb the pipeline output."""
    from repro.obs.trace import get_tracer

    t = get_tracer()
    assert not t.enabled
    plain = HSLBOptimizer(TwoComponentApp()).run(
        [16, 32, 64], 64, default_rng(0), execute=False
    )
    t.reset()
    t.enable()
    try:
        traced = HSLBOptimizer(TwoComponentApp()).run(
            [16, 32, 64], 64, default_rng(0), execute=False
        )
    finally:
        t.disable()
        t.reset()
    assert traced.allocation.nodes == plain.allocation.nodes
    assert traced.solution.objective == pytest.approx(plain.solution.objective)
