"""Tests for the logging facade: levels, verbosity mapping, stream routing."""

import io

import pytest

from repro.obs.logging import (
    DEBUG,
    ERROR,
    INFO,
    configure_logging,
    get_logger,
    set_verbosity,
)


@pytest.fixture
def captured():
    """Route facade output into a StringIO; restore defaults afterwards."""
    stream = io.StringIO()
    configure_logging(level=INFO, stream=stream)
    try:
        yield stream
    finally:
        # Reset to the defaults the CLI expects (stderr at emit time).
        import repro.obs.logging as mod

        mod._STATE.level = INFO
        mod._STATE.stream = None


def test_line_format(captured):
    get_logger("cli").info("planned campaign", counts=3, layout="hybrid")
    assert captured.getvalue() == (
        "[info] cli: planned campaign counts=3 layout=hybrid\n"
    )


def test_level_gate(captured):
    log = get_logger("gate")
    log.debug("hidden")
    log.info("shown")
    out = captured.getvalue()
    assert "hidden" not in out
    assert "shown" in out
    configure_logging(level=ERROR)
    log.warning("also hidden")
    log.error("still shown")
    out = captured.getvalue()
    assert "also hidden" not in out
    assert "still shown" in out


def test_level_accepts_names(captured):
    configure_logging(level="debug")
    get_logger("n").debug("now visible")
    assert "now visible" in captured.getvalue()
    with pytest.raises(ValueError):
        configure_logging(level="loud")


def test_set_verbosity_mapping(captured):
    import repro.obs.logging as mod

    set_verbosity(0, False)
    assert mod._STATE.level == INFO
    set_verbosity(1, False)
    assert mod._STATE.level == DEBUG
    set_verbosity(2, True)  # quiet wins
    assert mod._STATE.level == ERROR


def test_get_logger_is_cached():
    assert get_logger("same") is get_logger("same")


def test_is_enabled_for(captured):
    configure_logging(level=INFO)
    log = get_logger("check")
    assert log.isEnabledFor(INFO)
    assert not log.isEnabledFor(DEBUG)


def test_default_stream_is_stderr(capsys):
    get_logger("stderr-check").info("to stderr")
    out = capsys.readouterr()
    assert out.out == ""
    assert "[info] stderr-check: to stderr" in out.err
