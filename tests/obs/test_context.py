"""Context propagation: span stacks across asyncio tasks, threads, hops.

The regression this file pins: under the old thread-local stack, two
asyncio tasks interleaving on one loop thread would stitch their spans
into each other's trees (task B's span nested under whatever task A had
open at the switch).  With contextvar stacks every task owns its stack,
so concurrent requests produce independent, correctly-nested trees.
"""

import asyncio
import contextvars
import threading

from repro.obs.trace import (
    TraceContext,
    get_tracer,
    run_traced_child,
    span,
)


async def _request(name: str, delay: float) -> None:
    """One request shape: root -> (phase-1, phase-2), yielding between."""
    with span(name):
        with span(f"{name}.phase-1"):
            await asyncio.sleep(delay)
        await asyncio.sleep(delay)
        with span(f"{name}.phase-2"):
            await asyncio.sleep(delay)


def test_interleaved_tasks_build_independent_trees(tracer):
    """Two concurrent tasks must not splice spans into each other's tree."""

    async def main():
        # Different delays force genuine interleaving at every await.
        await asyncio.gather(_request("a", 0.003), _request("b", 0.001))

    asyncio.run(main())
    roots = {r.name: r for r in tracer.roots}
    assert sorted(roots) == ["a", "b"]
    for name, root in roots.items():
        assert [c.name for c in root.children] == [
            f"{name}.phase-1",
            f"{name}.phase-2",
        ]
        for child in root.children:
            assert child.children == []
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id
    assert roots["a"].trace_id != roots["b"].trace_id


def test_task_spans_nest_under_span_open_at_spawn(tracer):
    """A task's context is copied at create_task: it sees the open span."""

    async def child():
        with span("kid"):
            await asyncio.sleep(0)

    async def main():
        with span("parent"):
            task = asyncio.create_task(child())
            await task

    asyncio.run(main())
    (root,) = tracer.roots
    assert root.name == "parent"
    assert [c.name for c in root.children] == ["kid"]
    assert root.children[0].parent_id == root.span_id


def test_every_span_carries_ids(tracer):
    with span("outer") as outer:
        with span("inner") as inner:
            pass
    assert outer.trace_id and outer.span_id and outer.parent_id is None
    assert inner.trace_id == outer.trace_id
    assert inner.span_id != outer.span_id
    assert inner.parent_id == outer.span_id


def test_sibling_roots_get_distinct_trace_ids(tracer):
    with span("first"):
        pass
    with span("second"):
        pass
    a, b = tracer.roots
    assert a.trace_id != b.trace_id
    assert tracer.trace_roots(a.trace_id) == [a]


def test_plain_thread_starts_a_fresh_root(tracer):
    seen = {}

    def worker():
        with span("thread-side") as s:
            seen["parent_id"] = s.parent_id

    with span("main-side"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    # A bare thread has no inherited stack: its span is an independent root.
    assert seen["parent_id"] is None
    assert sorted(r.name for r in tracer.roots) == ["main-side", "thread-side"]


def test_copied_context_carries_the_stack_across_a_thread(tracer):
    """The run_in_executor recipe: copy_context().run nests the hop."""

    def worker():
        with span("executor-side"):
            pass

    with span("main-side") as parent:
        ctx = contextvars.copy_context()
        t = threading.Thread(target=ctx.run, args=(worker,))
        t.start()
        t.join()
    (root,) = tracer.roots
    assert root is parent
    assert [c.name for c in root.children] == ["executor-side"]
    assert root.children[0].parent_id == parent.span_id


def test_adopt_parents_new_roots_under_a_remote_context(tracer):
    ctx = TraceContext(trace_id="t-1", span_id="s-1", pid=-1)
    tracer.adopt(ctx)
    with span("adopted"):
        pass
    (root,) = tracer.roots
    assert root.trace_id == "t-1"
    assert root.parent_id == "s-1"
    tracer.adopt(None)


def test_current_context_reports_innermost_span(tracer):
    assert tracer.current_context() is None
    with span("outer") as outer:
        with span("inner") as inner:
            ctx = tracer.current_context()
            assert ctx.trace_id == outer.trace_id
            assert ctx.span_id == inner.span_id
    assert tracer.current_context() is None


def test_run_traced_child_inline_passthrough(tracer):
    """Same-pid contexts run inline: the live tracer keeps recording."""
    import os

    with span("parent") as parent:
        ctx = TraceContext(parent.trace_id, parent.span_id, os.getpid())
        value, spans = run_traced_child(ctx.to_dict(), lambda: 41 + 1)
    assert value == 42
    assert spans is None  # nothing shipped: spans landed in the live tree
    assert tracer.roots == [parent]


def test_run_traced_child_foreign_pid_ships_spans(tracer):
    """A foreign-pid context records in isolation and returns span dicts."""
    ctx = TraceContext(trace_id="t-far", span_id="s-far", pid=-1)

    def work():
        with span("worker.solve"):
            pass
        return "done"

    value, spans = run_traced_child(ctx.to_dict(), work)
    assert value == "done"
    assert spans is not None and spans[0]["name"] == "worker.solve"
    assert spans[0]["trace_id"] == "t-far"
    assert spans[0]["parent_id"] == "s-far"
    # The worker-side tracer is scrubbed afterwards: nothing recorded
    # leaks into the next task that lands on this (worker) process.
    assert get_tracer() is tracer
    assert not tracer.enabled and tracer.roots == []


def test_attach_remote_grafts_and_rebases(tracer):
    records = [
        {
            "name": "worker.solve",
            "trace_id": "t-x",
            "span_id": "w-1",
            "parent_id": "s-x",
            "start": 100.0,
            "duration": 0.5,
            "children": [],
        }
    ]
    with span("dispatch") as anchor:
        tracer.attach_remote(records, anchor=anchor)
    (grafted,) = anchor.children
    assert grafted.name == "worker.solve"
    assert grafted.span_id == "w-1"  # remote ids survive the graft
    assert grafted.start == anchor.start  # rebased onto the dispatch span
    assert grafted.end - grafted.start == 0.5
