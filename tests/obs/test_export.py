"""Tests for the exporters: JSONL traces, Prometheus text, ASCII renderings."""

from repro.obs.export import (
    parse_prometheus,
    parse_trace_jsonl,
    prometheus_exposition,
    registry_samples,
    render_flamegraph,
    render_timeline,
    trace_to_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span, trace_event


def _populated_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("solve_total", "solves by tier").inc(3, tier="oa")
    r.counter("solve_total").inc(1, tier="nlpbb")
    r.gauge("cache_size", "entries").set(17)
    h = r.histogram("wall_seconds", "per-solve wall", buckets=(0.1, 1.0))
    h.observe(0.05, status="optimal")
    h.observe(2.0, status="optimal")
    return r


def test_prometheus_round_trip():
    r = _populated_registry()
    text = prometheus_exposition(r)
    assert "# TYPE solve_total counter" in text
    assert "# HELP solve_total solves by tier" in text
    assert parse_prometheus(text) == registry_samples(r)


def test_prometheus_escapes_label_values():
    r = MetricsRegistry()
    r.counter("errs_total").inc(1, reason='bad "input"\nline\\two')
    text = prometheus_exposition(r)
    assert parse_prometheus(text) == registry_samples(r)


def test_empty_registry_exposes_empty_text():
    assert prometheus_exposition(MetricsRegistry()) == ""
    assert parse_prometheus("") == {}


def test_trace_jsonl_round_trip(tracer):
    with span("root", run=1):
        with span("stage-a"):
            trace_event("tick", i=7)
        with span("stage-b"):
            pass
    records = parse_trace_jsonl(trace_to_jsonl(tracer))
    assert [r["path"] for r in records] == [
        "root",
        "root/stage-a",
        "root/stage-b",
    ]
    assert records[0]["depth"] == 0 and records[1]["depth"] == 1
    assert records[0]["tags"] == {"run": 1}
    assert records[1]["events"][0]["name"] == "tick"
    assert records[1]["events"][0]["i"] == 7
    assert all(r["duration"] >= 0.0 for r in records)


def test_trace_jsonl_empty_trace(tracer):
    assert trace_to_jsonl(tracer) == ""
    assert parse_trace_jsonl("") == []


def test_write_jsonl_counts_lines(tracer, tmp_path):
    with span("a"):
        with span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(str(path)) == 2
    assert len(parse_trace_jsonl(path.read_text())) == 2


def test_flamegraph_renders_every_span(tracer):
    with span("pipeline"):
        with span("gather"):
            trace_event("retry", nodes=32)
        with span("solve"):
            pass
    art = render_flamegraph(tracer)
    for name in ("pipeline", "gather", "solve"):
        assert name in art
    assert "ms" in art
    assert "+1ev" in art  # the gather retry event is flagged
    # Children are indented under their parent.
    lines = art.splitlines()
    assert lines[0].startswith("pipeline")
    assert lines[1].startswith("  gather")


def test_timeline_renders_segments(tracer):
    with span("outer"):
        with span("inner"):
            pass
    art = render_timeline(tracer)
    assert "outer" in art and "inner" in art
    assert "[" in art and "]" in art


def test_renderings_handle_empty_trace(tracer):
    assert render_flamegraph(tracer) == "(empty trace)"
    assert render_timeline(tracer) == "(empty trace)"
