"""Tests for the exporters: JSONL traces, Prometheus text, ASCII renderings."""

from repro.obs.export import (
    assemble_trace,
    parse_prometheus,
    parse_trace_jsonl,
    prometheus_exposition,
    registry_samples,
    render_flamegraph,
    render_timeline,
    trace_to_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span, trace_event


def _populated_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("solve_total", "solves by tier").inc(3, tier="oa")
    r.counter("solve_total").inc(1, tier="nlpbb")
    r.gauge("cache_size", "entries").set(17)
    h = r.histogram("wall_seconds", "per-solve wall", buckets=(0.1, 1.0))
    h.observe(0.05, status="optimal")
    h.observe(2.0, status="optimal")
    return r


def test_prometheus_round_trip():
    r = _populated_registry()
    text = prometheus_exposition(r)
    assert "# TYPE solve_total counter" in text
    assert "# HELP solve_total solves by tier" in text
    assert parse_prometheus(text) == registry_samples(r)


def test_prometheus_escapes_label_values():
    r = MetricsRegistry()
    r.counter("errs_total").inc(1, reason='bad "input"\nline\\two')
    text = prometheus_exposition(r)
    assert parse_prometheus(text) == registry_samples(r)


def test_empty_registry_exposes_empty_text():
    assert prometheus_exposition(MetricsRegistry()) == ""
    assert parse_prometheus("") == {}


def test_labeled_histogram_buckets_round_trip():
    r = MetricsRegistry()
    h = r.histogram("lat_seconds", "latency", buckets=(0.01, 0.1, 1.0))
    for v, priority in ((0.005, "interactive"), (0.5, "batch"), (5.0, "batch")):
        h.observe(v, priority=priority)
    text = prometheus_exposition(r)
    parsed = parse_prometheus(text)
    assert parsed == registry_samples(r)
    batch_inf = (("priority", "batch"), ("le", "+Inf"))
    assert parsed["lat_seconds_bucket"][batch_inf] == 2.0


def test_exemplar_trailers_expose_and_parse():
    r = MetricsRegistry()
    h = r.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05, exemplar="1a2b-3c")
    h.observe(7.0, exemplar="dd-ee")
    text = prometheus_exposition(r)
    # OpenMetrics-style trailers on the bucket lines, latest exemplar wins.
    assert '# {trace_id="1a2b-3c"} 0.05' in text
    assert '# {trace_id="dd-ee"} 7' in text
    # The parser ignores trailers: samples match the un-exemplared view.
    assert parse_prometheus(text) == registry_samples(r)


def test_exemplars_reset_with_the_registry():
    r = MetricsRegistry()
    h = r.histogram("lat_seconds", "latency", buckets=(0.1,))
    h.observe(0.05, exemplar="gone")
    r.reset()
    h.observe(0.05)
    assert "gone" not in prometheus_exposition(r)


def test_assemble_trace_rebuilds_nested_trees(tracer):
    with span("req-a"):
        with span("solve"):
            pass
    with span("req-b"):
        pass
    records = parse_trace_jsonl(trace_to_jsonl(tracer))
    a_id = records[0]["trace_id"]
    roots = assemble_trace(records)
    assert [r.name for r in roots] == ["req-a", "req-b"]
    assert [c.name for c in roots[0].children] == ["solve"]
    assert roots[0].children[0].parent_id == roots[0].span_id
    only_a = assemble_trace(records, a_id)
    assert [r.name for r in only_a] == ["req-a"]
    assert {s.name for s, _ in only_a[0].walk()} == {"req-a", "solve"}


def test_assemble_trace_promotes_orphans_to_roots():
    records = [
        {
            "name": "stray",
            "trace_id": "t",
            "span_id": "s-2",
            "parent_id": "s-missing",
            "start": 0.0,
            "duration": 0.1,
        }
    ]
    (root,) = assemble_trace(records)
    assert root.name == "stray" and root.duration == 0.1


def test_trace_jsonl_round_trip(tracer):
    with span("root", run=1):
        with span("stage-a"):
            trace_event("tick", i=7)
        with span("stage-b"):
            pass
    records = parse_trace_jsonl(trace_to_jsonl(tracer))
    assert [r["path"] for r in records] == [
        "root",
        "root/stage-a",
        "root/stage-b",
    ]
    assert records[0]["depth"] == 0 and records[1]["depth"] == 1
    assert records[0]["tags"] == {"run": 1}
    assert records[1]["events"][0]["name"] == "tick"
    assert records[1]["events"][0]["i"] == 7
    assert all(r["duration"] >= 0.0 for r in records)


def test_trace_jsonl_empty_trace(tracer):
    assert trace_to_jsonl(tracer) == ""
    assert parse_trace_jsonl("") == []


def test_write_jsonl_counts_lines(tracer, tmp_path):
    with span("a"):
        with span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(str(path)) == 2
    assert len(parse_trace_jsonl(path.read_text())) == 2


def test_flamegraph_renders_every_span(tracer):
    with span("pipeline"):
        with span("gather"):
            trace_event("retry", nodes=32)
        with span("solve"):
            pass
    art = render_flamegraph(tracer)
    for name in ("pipeline", "gather", "solve"):
        assert name in art
    assert "ms" in art
    assert "+1ev" in art  # the gather retry event is flagged
    # Children are indented under their parent.
    lines = art.splitlines()
    assert lines[0].startswith("pipeline")
    assert lines[1].startswith("  gather")


def test_timeline_renders_segments(tracer):
    with span("outer"):
        with span("inner"):
            pass
    art = render_timeline(tracer)
    assert "outer" in art and "inner" in art
    assert "[" in art and "]" in art


def test_renderings_handle_empty_trace(tracer):
    assert render_flamegraph(tracer) == "(empty trace)"
    assert render_timeline(tracer) == "(empty trace)"
