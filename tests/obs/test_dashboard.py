"""The `hslb top` dashboard: pure rendering plus the refresh loop."""

import pytest

from repro.obs.dashboard import fetch_url, render_dashboard, top
from repro.obs.export import parse_prometheus, prometheus_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOTracker


def _exposition() -> str:
    registry = MetricsRegistry()
    slo = SLOTracker()
    for i in range(20):
        slo.record("interactive", 0.001 * (i + 1))
    slo.record("batch", None, outcome="shed")
    slo.export(registry)
    registry.counter("tier_requests_total", "requests").inc(21)
    hist = registry.histogram("tier_latency_seconds", "latency")
    hist.observe(0.01)
    hist.observe(0.2)
    return prometheus_exposition(registry)


def test_dashboard_renders_every_panel():
    art = render_dashboard(parse_prometheus(_exposition()))
    assert art.startswith("hslb top")
    assert "SLO burn & rolling-window latency" in art
    assert "interactive" in art and "batch" in art
    assert "availability" in art  # burn bars for the default targets
    assert "Latency histograms" in art
    assert "tier_latency_seconds" in art
    assert "Counters & gauges" in art
    assert "tier_requests_total" in art


def test_dashboard_handles_no_samples():
    assert "(no samples)" in render_dashboard({})


def test_top_paints_and_sleeps_between_frames():
    frames: list[str] = []
    naps: list[float] = []
    painted = top(
        _exposition,
        interval=0.5,
        iterations=3,
        write=frames.append,
        sleep=naps.append,
    )
    assert painted == 3
    assert len(frames) == 3
    assert naps == [0.5, 0.5]  # no sleep after the final frame
    assert all(f.startswith("\x1b[2J\x1b[H") for f in frames)
    assert "hslb top" in frames[0]


def test_top_reports_fetch_failure_and_stops():
    frames: list[str] = []

    def flaky(calls=iter([_exposition()])):
        try:
            return next(calls)
        except StopIteration:
            raise OSError("connection refused") from None

    painted = top(flaky, iterations=5, write=frames.append, sleep=lambda _: None)
    assert painted == 1
    assert "fetch failed" in frames[-1]


def test_fetch_url_refuses_unreachable_port():
    with pytest.raises(OSError):
        fetch_url("http://127.0.0.1:1/metrics", timeout=0.2)
