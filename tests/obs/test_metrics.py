"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Histogram, MetricsRegistry


def test_counter_basics():
    r = MetricsRegistry()
    c = r.counter("requests_total", "requests served")
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_are_order_insensitive():
    r = MetricsRegistry()
    c = r.counter("ops_total")
    c.inc(1, kind="read", zone="a")
    c.inc(2, zone="a", kind="read")  # same series, different kwarg order
    c.inc(5, kind="write", zone="a")
    assert c.value(kind="read", zone="a") == 3
    assert c.value(zone="a", kind="read") == 3
    assert c.value(kind="write", zone="a") == 5
    assert c.value(kind="missing") == 0


def test_gauge_set_and_inc():
    r = MetricsRegistry()
    g = r.gauge("queue_depth")
    g.set(10)
    g.inc(-3)
    assert g.value() == 7


def test_histogram_buckets_and_summaries():
    r = MetricsRegistry()
    h = r.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count() == 4
    assert h.sum() == pytest.approx(55.55)
    samples = dict(((n, k), v) for n, k, v in h.samples())
    assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 1
    assert samples[("latency_seconds_bucket", (("le", "1.0"),))] == 2
    assert samples[("latency_seconds_bucket", (("le", "10.0"),))] == 3
    assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 4
    assert samples[("latency_seconds_count", ())] == 4


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(1.0, 0.5))


def test_registry_get_or_create_and_type_conflict():
    r = MetricsRegistry()
    assert r.counter("x_total") is r.counter("x_total")
    with pytest.raises(TypeError, match="already registered"):
        r.gauge("x_total")
    assert "x_total" in r
    assert r.get("x_total") is not None
    assert r.get("nope") is None


def test_bad_metric_names_rejected():
    for bad in ("", "9starts_with_digit", "has space", "has-dash"):
        with pytest.raises(ValueError):
            Counter(bad)


def test_registry_iterates_sorted_and_snapshots():
    r = MetricsRegistry()
    r.counter("b_total").inc(2)
    r.counter("a_total").inc(1, kind="x")
    assert [m.name for m in r] == ["a_total", "b_total"]
    snap = r.snapshot()
    assert snap["a_total"] == {"kind=x": 1.0}
    assert snap["b_total"] == {"": 2.0}


def test_registry_reset_zeroes_but_keeps_families():
    r = MetricsRegistry()
    r.counter("c_total").inc(5)
    r.gauge("g").set(3)
    r.histogram("h").observe(0.2)
    r.reset()
    assert "c_total" in r and "g" in r and "h" in r
    assert r.counter("c_total").value() == 0
    assert r.gauge("g").value() == 0
    assert r.histogram("h").count() == 0


def test_default_buckets_match_service_latency_buckets():
    from repro.service.metrics import LATENCY_BUCKETS

    assert DEFAULT_BUCKETS == LATENCY_BUCKETS
