"""SLO tracker: rolling windows, quantiles, burn rates, gauge export."""

import pytest

from repro.obs.export import prometheus_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BUCKET_SAMPLE_CAP,
    DEFAULT_TARGETS,
    SLOTarget,
    SLOTracker,
)


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def tracker(clock, **kwargs) -> SLOTracker:
    kwargs.setdefault("window", 60.0)
    kwargs.setdefault("buckets", 12)
    return SLOTracker(clock=clock, **kwargs)


def test_target_validation():
    with pytest.raises(ValueError):
        SLOTarget("bad", objective=1.0)
    with pytest.raises(ValueError):
        SLOTarget("bad", latency=0.0)
    with pytest.raises(ValueError):
        SLOTracker(window=0.0)
    with pytest.raises(ValueError):
        SLOTracker((SLOTarget("dup"), SLOTarget("dup")))
    with pytest.raises(ValueError):
        SLOTracker(clock=FakeClock()).record("batch", 0.1, outcome="exploded")


def test_per_priority_quantiles_and_rates():
    clock = FakeClock()
    slo = tracker(clock)
    for i in range(100):
        slo.record("interactive", 0.001 * (i + 1))
    slo.record("interactive", None, outcome="shed")
    slo.record("batch", 0.5, outcome="degraded")
    snap = slo.snapshot()
    inter = snap["priorities"]["interactive"]
    assert inter["total"] == 101
    assert inter["p50"] == pytest.approx(0.0505, rel=0.02)
    assert inter["p99"] == pytest.approx(0.100, rel=0.02)
    assert inter["shed_rate"] == pytest.approx(1 / 101)
    assert snap["priorities"]["batch"]["degraded_rate"] == 1.0


def test_outcomes_age_out_of_the_window():
    clock = FakeClock()
    slo = tracker(clock)
    slo.record("batch", None, outcome="error")
    clock.advance(30.0)
    assert slo.snapshot()["priorities"]["batch"]["error_rate"] == 1.0
    clock.advance(31.0)  # past the 60 s window: the error is history
    assert "batch" not in slo.snapshot()["priorities"]


def test_latency_burn_rate():
    clock = FakeClock()
    target = SLOTarget("fast", objective=0.9, priority="interactive", latency=0.1)
    slo = tracker(clock, targets=(target,))
    for _ in range(8):
        slo.record("interactive", 0.01)
    slo.record("interactive", 0.5)  # slow: burns budget
    slo.record("interactive", None, outcome="error")  # failures burn too
    stats = slo.snapshot()["targets"]["fast"]
    # 2 bad of 10 against a 10% budget: burning at exactly 2x accrual.
    assert stats["bad"] == 2 and stats["total"] == 10
    assert stats["burn_rate"] == pytest.approx(2.0)
    assert not stats["healthy"]


def test_availability_target_spans_all_priorities():
    clock = FakeClock()
    target = SLOTarget("avail", objective=0.5)
    slo = tracker(clock, targets=(target,))
    slo.record("interactive", 0.01)
    slo.record("batch", None, outcome="shed")
    stats = slo.snapshot()["targets"]["avail"]
    assert stats["total"] == 2 and stats["bad"] == 1
    assert stats["burn_rate"] == pytest.approx(1.0)
    assert stats["healthy"]  # burn == 1.0 is exactly at budget


def test_empty_window_reports_zero_burn():
    slo = tracker(FakeClock())
    snap = slo.snapshot()
    assert snap["priorities"] == {}
    for stats in snap["targets"].values():
        assert stats["burn_rate"] == 0.0 and stats["healthy"]


def test_bucket_sample_cap_bounds_memory():
    clock = FakeClock()
    slo = tracker(clock, window=60.0, buckets=1)
    for _ in range(BUCKET_SAMPLE_CAP + 100):
        slo.record("batch", 0.01)
    ring = slo._rings["batch"]
    assert len(ring[0].latencies) == BUCKET_SAMPLE_CAP
    # Counts keep the true total even after sampling saturates.
    assert slo.snapshot()["priorities"]["batch"]["total"] == BUCKET_SAMPLE_CAP + 100


def test_export_publishes_slo_gauges():
    clock = FakeClock()
    slo = tracker(clock)
    slo.record("interactive", 0.02)
    slo.record("interactive", None, outcome="shed")
    registry = MetricsRegistry()
    slo.export(registry)
    text = prometheus_exposition(registry)
    assert 'slo_latency_seconds{priority="interactive",quantile="p99"}' in text
    assert 'slo_outcome_rate{kind="shed",priority="interactive"} 0.5' in text
    assert 'slo_burn_rate{target="availability"}' in text
    assert 'slo_window_requests{priority="interactive"} 2' in text


def test_render_flags_burning_targets():
    clock = FakeClock()
    slo = tracker(clock)
    assert slo.targets == DEFAULT_TARGETS
    for _ in range(10):
        slo.record("interactive", 5.0)  # way past the 250 ms threshold
    art = slo.render()
    assert "interactive" in art
    assert "BURNING" in art
