"""Tests for the span tracer: nesting, tags, events, and the disabled path."""

import threading

import pytest

from repro.obs.trace import NULL_SPAN, get_tracer, span, trace_event


def test_disabled_span_is_the_shared_null_object():
    t = get_tracer()
    assert not t.enabled
    assert span("anything", key="value") is NULL_SPAN
    # The null span supports the full protocol without recording anything.
    with span("nothing") as sp:
        sp.set_tag("k", 1).event("e", x=2)
    trace_event("dropped", n=3)
    assert t.roots == []


def test_span_nesting_builds_a_tree(tracer):
    with span("root", kind="test"):
        with span("child-a"):
            with span("leaf"):
                pass
        with span("child-b"):
            pass
    [root] = tracer.roots
    assert root.name == "root"
    assert root.tags == {"kind": "test"}
    assert [c.name for c in root.children] == ["child-a", "child-b"]
    assert [c.name for c in root.children[0].children] == ["leaf"]
    names = [(s.name, d) for s, d in tracer.walk()]
    assert names == [("root", 0), ("child-a", 1), ("leaf", 2), ("child-b", 1)]


def test_span_durations_nest(tracer):
    with span("outer"):
        with span("inner"):
            pass
    [outer] = tracer.roots
    [inner] = outer.children
    assert outer.end is not None and inner.end is not None
    assert outer.start <= inner.start
    assert inner.end <= outer.end
    assert outer.duration >= inner.duration >= 0.0


def test_events_attach_to_innermost_open_span(tracer):
    with span("outer"):
        trace_event("on-outer", n=1)
        with span("inner"):
            trace_event("on-inner", n=2)
    [outer] = tracer.roots
    assert [e["name"] for e in outer.events] == ["on-outer"]
    assert outer.events[0]["n"] == 1
    [inner] = outer.children
    assert [e["name"] for e in inner.events] == ["on-inner"]
    # Event timestamps are relative to their span's start.
    assert inner.events[0]["at"] >= 0.0


def test_event_outside_any_span_becomes_a_root_blip(tracer):
    trace_event("orphan", reason="no open span")
    [blip] = tracer.roots
    assert blip.name == "orphan"
    assert blip.duration == 0.0
    assert blip.events[0]["reason"] == "no open span"


def test_exception_in_span_is_tagged_and_propagates(tracer):
    with pytest.raises(ValueError, match="boom"):
        with span("failing"):
            raise ValueError("boom")
    [sp] = tracer.roots
    assert sp.tags["error"] == "ValueError: boom"
    assert sp.end is not None  # the span still closed


def test_find_and_set_tag(tracer):
    with span("pipeline") as sp:
        sp.set_tag("answer", 42)
        with span("stage"):
            pass
    assert tracer.find("stage") is not None
    assert tracer.find("pipeline").tags["answer"] == 42
    assert tracer.find("missing") is None


def test_reset_drops_spans_but_keeps_enabled(tracer):
    with span("before"):
        pass
    tracer.reset()
    assert tracer.roots == []
    assert tracer.enabled
    with span("after"):
        pass
    assert [r.name for r in tracer.roots] == ["after"]


def test_threads_get_independent_span_stacks(tracer):
    done = threading.Event()

    def worker():
        with span("worker-root"):
            done.wait(timeout=5)

    thread = threading.Thread(target=worker)
    with span("main-root"):
        thread.start()
        # The worker's open span must not become our child.
        with span("main-child"):
            pass
    done.set()
    thread.join()
    names = {r.name for r in tracer.roots}
    assert names == {"main-root", "worker-root"}
    main_root = next(r for r in tracer.roots if r.name == "main-root")
    assert [c.name for c in main_root.children] == ["main-child"]


def test_to_dicts_shape(tracer):
    with span("root", layer="cli"):
        trace_event("tick", i=0)
    [doc] = tracer.to_dicts()
    assert doc["name"] == "root"
    assert doc["tags"] == {"layer": "cli"}
    assert doc["events"][0]["name"] == "tick"
    assert doc["children"] == []
    assert doc["duration"] >= 0.0
