"""The disabled tracer must be (near-)free — the <5% overhead contract.

Strategy: measure the per-call cost of the disabled fast path directly
(shared null span, one attribute check), count how many instrumentation
sites a representative solve actually hits (from an enabled trace of the
same solve), and bound the product against the untraced solve's wall time.
This is machine-independent in the way a raw A/B timing comparison is not:
a few hundred sub-microsecond guards inside a multi-millisecond solve can't
be resolved by timing two runs, but cost-per-guard x guard-count can.
"""

from time import perf_counter

from repro.core.hslb import HSLBOptimizer
from repro.obs.trace import get_tracer, span, trace_event
from repro.util.rng import default_rng

from tests.obs.test_pipeline_tracing import TwoComponentApp


def _run_once():
    return HSLBOptimizer(TwoComponentApp()).run(
        [16, 32, 64], 64, default_rng(0), execute=False
    )


def test_disabled_instrumentation_overhead_under_5_percent():
    tracer = get_tracer()
    assert not tracer.enabled

    # Per-call cost of the disabled path, amortized over many calls.
    calls = 200_000
    start = perf_counter()
    for _ in range(calls):
        with span("probe", tag=1):
            pass
    span_cost = (perf_counter() - start) / calls
    start = perf_counter()
    for _ in range(calls):
        trace_event("probe", field=1)
    event_cost = (perf_counter() - start) / calls

    # Wall time of the representative solve with tracing off (after a
    # warm-up run so imports/caches don't inflate the measurement).
    _run_once()
    start = perf_counter()
    _run_once()
    wall = perf_counter() - start

    # Count the instrumentation sites that solve actually hits.
    tracer.reset()
    tracer.enable()
    try:
        _run_once()
        spans_hit = sum(1 for _ in tracer.walk())
        events_hit = sum(len(s.events) for s, _ in tracer.walk())
    finally:
        tracer.disable()
        tracer.reset()

    assert spans_hit > 5  # the pipeline really is instrumented
    overhead = spans_hit * span_cost + events_hit * event_cost
    assert overhead < 0.05 * wall, (
        f"disabled-tracer overhead {overhead * 1e6:.1f}us exceeds 5% of the "
        f"{wall * 1e3:.1f}ms solve ({spans_hit} spans @ {span_cost * 1e9:.0f}ns, "
        f"{events_hit} events @ {event_cost * 1e9:.0f}ns)"
    )


def test_null_span_allocates_nothing():
    """The disabled path hands back one shared object, never a new Span."""
    from repro.obs.trace import NULL_SPAN

    tracer = get_tracer()
    assert not tracer.enabled
    seen = {id(span("a")), id(span("b", x=1)), id(span("c", y=2, z=3))}
    assert seen == {id(NULL_SPAN)}
