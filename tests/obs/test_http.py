"""The in-loop /metrics + /healthz endpoint, exercised over real sockets."""

import asyncio
import json

from repro.obs.export import parse_prometheus
from repro.obs.http import MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOTracker


async def _get(port: int, path: str, raw: str | None = None) -> tuple[int, str]:
    """Minimal HTTP/1.0 client: (status, body) for one request."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    request = raw if raw is not None else f"GET {path} HTTP/1.0\r\n\r\n"
    writer.write(request.encode())
    await writer.drain()
    response = (await reader.read()).decode()
    writer.close()
    head, _, body = response.partition("\r\n\r\n")
    return int(head.split()[1]), body


def test_metrics_endpoint_serves_the_registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "demo").inc(3, kind="x")

    async def main():
        async with MetricsServer(registry) as server:
            assert server.port != 0
            assert server.url.endswith(str(server.port))
            return await _get(server.port, "/metrics")

    status, body = asyncio.run(main())
    assert status == 200
    assert parse_prometheus(body)["demo_total"][(("kind", "x"),)] == 3.0


def test_metrics_endpoint_refreshes_slo_gauges():
    registry = MetricsRegistry()
    slo = SLOTracker()
    slo.record("interactive", 0.01)

    async def main():
        async with MetricsServer(registry, slo=slo) as server:
            return await _get(server.port, "/metrics")

    _, body = asyncio.run(main())
    samples = parse_prometheus(body)
    assert samples["slo_window_requests"][(("priority", "interactive"),)] == 1.0


def test_healthz_merges_the_health_callback():
    async def main():
        server = MetricsServer(
            MetricsRegistry(), health=lambda: {"served": 7, "shards": 2}
        )
        async with server:
            return await _get(server.port, "/healthz")

    status, body = asyncio.run(main())
    assert status == 200
    assert json.loads(body) == {"status": "ok", "served": 7, "shards": 2}


def test_unknown_path_and_bad_method():
    async def main():
        async with MetricsServer(MetricsRegistry()) as server:
            missing = await _get(server.port, "/nope")
            posted = await _get(
                server.port, "", raw="POST /metrics HTTP/1.0\r\n\r\n"
            )
            return missing, posted

    (missing_status, _), (posted_status, _) = asyncio.run(main())
    assert missing_status == 404
    assert posted_status == 405


def test_query_strings_are_ignored():
    async def main():
        async with MetricsServer(MetricsRegistry()) as server:
            return await _get(server.port, "/healthz?probe=1")

    status, body = asyncio.run(main())
    assert status == 200 and json.loads(body)["status"] == "ok"
