"""Shared fixtures: a clean process-wide tracer around every obs test."""

import pytest

from repro.obs.trace import get_tracer


@pytest.fixture
def tracer():
    """The singleton tracer, enabled and empty; disabled again afterwards.

    The tracer is process-wide state, so tests must not leak an enabled
    tracer (or stale spans) into the rest of the suite.
    """
    t = get_tracer()
    t.reset()
    t.enable()
    try:
        yield t
    finally:
        t.disable()
        t.reset()
