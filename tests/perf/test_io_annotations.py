"""Round-trip of failure/retry annotations in the benchmark JSON format."""

import json

import pytest

from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.io import load_suite, save_suite, suite_from_dict, suite_to_dict


@pytest.fixture
def annotated():
    return BenchmarkSuite(
        [
            ComponentBenchmark(
                "atm",
                [
                    ScalingObservation(104, 306.95),
                    ScalingObservation(512, 98.81, retries=2),
                    ScalingObservation(1024, 310.0, status="straggler"),
                ],
            ),
            ComponentBenchmark(
                "ocn", [ScalingObservation(24, 362.7, retries=1, status="straggler")]
            ),
        ]
    )


def test_annotations_round_trip(annotated, tmp_path):
    loaded = load_suite(save_suite(annotated, tmp_path / "bench.json"))
    obs = {o.nodes: o for o in loaded["atm"]}
    assert obs[104].retries == 0 and obs[104].status == "ok"
    assert obs[512].retries == 2 and obs[512].status == "ok"
    assert obs[1024].status == "straggler"
    [ocn] = list(loaded["ocn"])
    assert ocn.retries == 1 and ocn.status == "straggler"


def test_clean_observations_stay_two_element(annotated):
    """Unannotated rows keep the original compact [nodes, seconds] shape, so
    files written by this version are readable by the previous one."""
    payload = suite_to_dict(annotated)
    assert payload["format"] == "hslb-benchmarks-v1"  # format id unchanged
    rows = payload["components"]["atm"]
    assert rows[0] == [104, 306.95]
    assert rows[1] == [512, 98.81, {"retries": 2}]
    assert rows[2] == [1024, 310.0, {"status": "straggler"}]


def test_old_files_still_load(tmp_path):
    """Forward compatibility: pre-annotation files are plain 2-element rows."""
    old = {
        "format": "hslb-benchmarks-v1",
        "components": {"atm": [[104, 306.95], [512, 98.81]]},
    }
    p = tmp_path / "old.json"
    p.write_text(json.dumps(old))
    loaded = load_suite(p)
    assert [o.retries for o in loaded["atm"]] == [0, 0]
    assert all(o.status == "ok" for o in loaded["atm"])


def test_bad_annotation_rejected(tmp_path):
    bad = {
        "format": "hslb-benchmarks-v1",
        "components": {"atm": [[104, 306.95, {"status": "zombie"}]]},
    }
    p = tmp_path / "bad.json"
    p.write_text(json.dumps(bad))
    with pytest.raises(ValueError):
        load_suite(p)


def test_observation_validation():
    with pytest.raises(ValueError):
        ScalingObservation(16, 1.0, retries=-1)
    with pytest.raises(ValueError):
        ScalingObservation(16, 1.0, status="zombie")
    assert ScalingObservation(16, 1.0).clean
    assert not ScalingObservation(16, 1.0, status="straggler").clean


def test_pruning_keeps_minimum_points():
    bench = ComponentBenchmark(
        "atm",
        [
            ScalingObservation(16, 1.0, status="straggler"),
            ScalingObservation(32, 2.0, status="straggler"),
            ScalingObservation(64, 3.0),
        ],
    )
    assert bench.flagged_count() == 2
    # Dropping both stragglers would leave one point: keep them instead.
    assert len(bench.pruned(min_points=2)) == 3
    richer = ComponentBenchmark(
        "atm",
        [
            ScalingObservation(16, 1.0, status="straggler"),
            ScalingObservation(32, 2.0),
            ScalingObservation(64, 3.0),
        ],
    )
    pruned = richer.pruned(min_points=2)
    assert len(pruned) == 2
    assert all(o.clean for o in pruned)


def test_suite_degenerate_components():
    suite = BenchmarkSuite(
        [
            ComponentBenchmark(
                "good",
                [ScalingObservation(16, 1.0), ScalingObservation(32, 2.0)],
            ),
            ComponentBenchmark("thin", [ScalingObservation(16, 1.0)]),
        ]
    )
    reasons = suite.degenerate_components(min_points=2)
    assert set(reasons) == {"thin"}
    assert "1" in reasons["thin"]
