"""Tests for benchmark/model persistence."""

import json

import pytest

from repro.perf.data import BenchmarkSuite, ComponentBenchmark
from repro.perf.io import (
    load_models,
    load_suite,
    models_from_dict,
    models_to_dict,
    save_models,
    save_suite,
    suite_from_dict,
    suite_to_dict,
)
from repro.perf.model import PerformanceModel


@pytest.fixture
def suite():
    return BenchmarkSuite(
        [
            ComponentBenchmark.from_pairs("atm", [(104, 306.95), (512, 98.81)]),
            ComponentBenchmark.from_pairs("ocn", [(24, 362.7), (240, 76.4)]),
        ]
    )


def test_suite_round_trip(suite, tmp_path):
    path = save_suite(suite, tmp_path / "bench.json")
    loaded = load_suite(path)
    assert set(loaded.components) == {"atm", "ocn"}
    assert len(loaded["atm"]) == 2
    n, y = loaded["atm"].arrays()
    assert list(n) == [104.0, 512.0]
    assert y[0] == pytest.approx(306.95)


def test_suite_dict_format_guard(suite):
    payload = suite_to_dict(suite)
    assert payload["format"] == "hslb-benchmarks-v1"
    with pytest.raises(ValueError, match="expected format"):
        suite_from_dict({"format": "something-else"})
    with pytest.raises(ValueError, match="components"):
        suite_from_dict({"format": "hslb-benchmarks-v1"})


def test_suite_file_is_stable_json(suite, tmp_path):
    path = save_suite(suite, tmp_path / "bench.json")
    payload = json.loads(path.read_text())
    assert payload["components"]["ocn"] == [[24, 362.7], [240, 76.4]]


def test_models_round_trip(tmp_path):
    models = {
        "atm": PerformanceModel(a=27380.0, b=1e-3, c=1.0, d=43.0),
        "ocn": PerformanceModel(a=7550.0, d=45.0),
    }
    path = save_models(models, tmp_path / "models.json")
    loaded = load_models(path)
    assert loaded["atm"] == models["atm"]
    assert loaded["ocn"].time(24) == pytest.approx(models["ocn"].time(24))


def test_models_format_guard():
    with pytest.raises(ValueError, match="expected format"):
        models_from_dict({"format": "nope"})
    with pytest.raises(ValueError, match="models"):
        models_from_dict({"format": "hslb-models-v1"})


def test_loaded_suite_usable_by_pipeline(suite, tmp_path):
    """A persisted campaign can skip the gather step entirely (§III-F)."""
    from repro.perf.fitting import fit_suite

    loaded = load_suite(save_suite(suite, tmp_path / "b.json"))
    fits = fit_suite(loaded, multistart=2)
    assert set(fits) == {"atm", "ocn"}


def test_negative_values_rejected_on_load(tmp_path):
    bad = {
        "format": "hslb-benchmarks-v1",
        "components": {"atm": [[-4, 10.0]]},
    }
    p = tmp_path / "bad.json"
    p.write_text(json.dumps(bad))
    with pytest.raises(ValueError):
        load_suite(p)
