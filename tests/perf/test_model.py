"""Tests for the performance-model family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp.expr import VarRef
from repro.perf.model import PerformanceModel


def test_time_matches_formula():
    m = PerformanceModel(a=100.0, b=0.01, c=1.5, d=5.0)
    n = 16.0
    assert m.time(n) == pytest.approx(100 / 16 + 0.01 * 16**1.5 + 5.0)
    assert m(n) == m.time(n)


def test_time_vectorized():
    m = PerformanceModel(a=10.0, d=1.0)
    out = m.time(np.array([1.0, 2.0, 5.0]))
    np.testing.assert_allclose(out, [11.0, 6.0, 3.0])


def test_nonpositive_nodes_rejected():
    m = PerformanceModel(a=1.0)
    with pytest.raises(ValueError):
        m.time(0)
    with pytest.raises(ValueError):
        m.time(np.array([1.0, -2.0]))


def test_negative_parameters_rejected():
    with pytest.raises(ValueError):
        PerformanceModel(a=-1.0)
    with pytest.raises(ValueError):
        PerformanceModel(a=1.0, d=-0.1)


def test_amdahl_constructor():
    m = PerformanceModel.amdahl(100.0, 2.0)
    assert m.b == 0.0
    assert m.time(50) == pytest.approx(4.0)


def test_derivative_matches_finite_difference():
    m = PerformanceModel(a=500.0, b=0.02, c=1.3, d=7.0)
    n = 37.0
    h = 1e-5
    fd = (m.time(n + h) - m.time(n - h)) / (2 * h)
    assert m.derivative(n) == pytest.approx(fd, rel=1e-6)


def test_expression_round_trip():
    m = PerformanceModel(a=27180.0, b=1e-4, c=1.2, d=45.7)
    e = m.expression("n")
    for n in (10.0, 104.0, 1664.0):
        assert e.evaluate({"n": n}) == pytest.approx(m.time(n))


def test_expression_skips_zero_terms():
    m = PerformanceModel(a=10.0, b=0.0, d=0.0)
    e = m.expression(VarRef("n"))
    assert e.variables() == frozenset({"n"})
    assert e.evaluate({"n": 5.0}) == pytest.approx(2.0)


def test_convexity_flag():
    assert PerformanceModel(a=1.0, b=0.1, c=1.0).is_convex
    assert PerformanceModel(a=1.0, b=0.0, c=0.5).is_convex  # b=0: c irrelevant
    assert not PerformanceModel(a=1.0, b=0.1, c=0.5).is_convex


def test_optimal_nodes_interior():
    m = PerformanceModel(a=1000.0, b=0.1, c=1.0, d=0.0)
    n_star = m.optimal_nodes()
    # T'(n*) = 0 -> n* = sqrt(a/(b c)) = sqrt(10000) = 100.
    assert n_star == pytest.approx(100.0)
    assert m.derivative(n_star) == pytest.approx(0.0, abs=1e-9)


def test_optimal_nodes_monotone_case():
    m = PerformanceModel(a=1000.0, d=2.0)
    assert m.optimal_nodes(n_max=4096) == 4096.0


def test_efficiency_decreases():
    m = PerformanceModel(a=100.0, d=1.0)
    effs = m.efficiency(np.array([1.0, 10.0, 100.0]))
    assert effs[0] == pytest.approx(1.0)
    assert effs[0] > effs[1] > effs[2]


def test_serial_fraction():
    m = PerformanceModel(a=99.0, d=1.0)
    assert m.serial_fraction() == pytest.approx(0.01)


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(1.0, 1e5),
    b=st.floats(0.0, 1.0),
    c=st.floats(1.0, 2.5),
    d=st.floats(0.0, 100.0),
)
def test_convexity_property(a, b, c, d):
    """With nonnegative params and c >= 1, midpoint convexity holds."""
    m = PerformanceModel(a=a, b=b, c=c, d=d)
    n1, n2 = 3.0, 301.0
    mid = 0.5 * (n1 + n2)
    assert m.time(mid) <= 0.5 * (m.time(n1) + m.time(n2)) + 1e-9


@settings(max_examples=50, deadline=None)
@given(a=st.floats(1.0, 1e4), d=st.floats(0.0, 10.0), n=st.floats(1.0, 1e4))
def test_amdahl_floor_property(a, d, n):
    """T(n) never drops below the serial floor d."""
    m = PerformanceModel(a=a, d=d)
    assert m.time(n) >= d


def test_frozen_dataclass():
    m = PerformanceModel(a=1.0)
    with pytest.raises(Exception):
        m.a = 2.0


def test_as_tuple_and_repr():
    m = PerformanceModel(a=1.0, b=2.0, c=1.5, d=3.0)
    assert m.as_tuple() == (1.0, 2.0, 1.5, 3.0)
    assert "PerformanceModel" in repr(m)
