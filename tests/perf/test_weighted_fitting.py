"""Tests for replicate aggregation and variance-weighted fitting."""

import numpy as np
import pytest

from repro.perf.data import ComponentBenchmark
from repro.perf.fitting import fit_component
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

TRUTH = PerformanceModel(a=5000.0, d=10.0)


def _replicated_bench(rng, noise_small=0.01, noise_large=0.12, reps=4):
    """Clean small-node replicates, noisy large-node replicates."""
    pairs = []
    for n in (8, 16, 32):
        for _ in range(reps):
            pairs.append((n, float(TRUTH.time(n)) * float(np.exp(rng.normal(0, noise_small)))))
    for n in (128, 512, 2048):
        for _ in range(reps):
            pairs.append((n, float(TRUTH.time(n)) * float(np.exp(rng.normal(0, noise_large)))))
    return ComponentBenchmark.from_pairs("atm", pairs)


def test_aggregate_math():
    b = ComponentBenchmark.from_pairs("x", [(4, 10.0), (4, 12.0), (8, 5.0)])
    rows = b.aggregate()
    assert rows[0][0] == 4
    assert rows[0][1] == pytest.approx(11.0)
    assert rows[0][2] == pytest.approx(np.std([10.0, 12.0], ddof=1))
    assert rows[0][3] == 2
    assert rows[1] == (8, 5.0, 0.0, 1)


def test_relative_noise_pooling():
    b = ComponentBenchmark.from_pairs(
        "x", [(4, 100.0), (4, 102.0), (8, 50.0), (8, 51.0)]
    )
    noise = b.relative_noise()
    assert 0.0 < noise < 0.05
    single = ComponentBenchmark.from_pairs("x", [(4, 100.0), (8, 50.0)])
    assert single.relative_noise() == 0.0


def test_weighted_fit_uses_aggregated_points(rng):
    bench = _replicated_bench(rng)
    fit = fit_component(bench, weighted=True, rng=default_rng(2))
    # 6 distinct node counts after aggregation.
    assert fit.n_points == 6
    unweighted = fit_component(bench, weighted=False, rng=default_rng(2))
    assert unweighted.n_points == 24


def test_weighted_fit_downweights_noisy_tail():
    """With clean small-n replicates and noisy large-n ones, the weighted
    fit should recover the scalable coefficient at least as well."""
    errs_w, errs_u = [], []
    for seed in range(6):
        bench = _replicated_bench(default_rng(seed))
        w = fit_component(bench, weighted=True, rng=default_rng(99))
        u = fit_component(bench, weighted=False, rng=default_rng(99))
        errs_w.append(abs(w.model.a - TRUTH.a) / TRUTH.a)
        errs_u.append(abs(u.model.a - TRUTH.a) / TRUTH.a)
    assert np.mean(errs_w) <= np.mean(errs_u) + 0.01
    assert np.mean(errs_w) < 0.05


def test_weighted_fit_without_replicates_falls_back(rng):
    bench = ComponentBenchmark.from_pairs(
        "x", [(n, float(TRUTH.time(n))) for n in (8, 32, 128, 512)]
    )
    fit = fit_component(bench, weighted=True, rng=rng)
    assert fit.r_squared > 0.9999
