"""Tests for alternative model families and AICc selection."""

import numpy as np
import pytest

from repro.minlp.expr import VarRef
from repro.perf.model import PerformanceModel
from repro.perf.selection import (
    PowerLawModel,
    fit_amdahl,
    fit_power_law,
    select_model,
)
from repro.util.rng import default_rng

NODES = np.array([4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0])


def test_power_law_model_basics():
    m = PowerLawModel(a=100.0, p=0.7, d=2.0)
    assert m.time(1) == pytest.approx(102.0)
    assert m.time(100) < m.time(10) < m.time(1)
    assert m.is_convex
    with pytest.raises(ValueError):
        m.time(0)
    with pytest.raises(ValueError):
        PowerLawModel(a=1.0, p=0.0)


def test_power_law_expression_round_trip():
    m = PowerLawModel(a=50.0, p=1.3, d=4.0)
    e = m.expression("n")
    for n in (2.0, 17.0, 300.0):
        assert e.evaluate({"n": n}) == pytest.approx(m.time(n))
    e2 = m.expression(VarRef("x"))
    assert e2.variables() == frozenset({"x"})


def test_fit_amdahl_exact():
    truth = PerformanceModel(a=500.0, d=3.0)
    fit = fit_amdahl(NODES, truth.time(NODES))
    assert fit.a == pytest.approx(500.0, rel=1e-8)
    assert fit.d == pytest.approx(3.0, rel=1e-8)
    assert fit.b == 0.0


def test_fit_amdahl_nonnegative_under_weird_data():
    # Increasing data cannot produce negative parameters.
    y = np.linspace(1.0, 5.0, NODES.size)
    fit = fit_amdahl(NODES, y)
    assert fit.a >= 0 and fit.d >= 0
    with pytest.raises(ValueError):
        fit_amdahl(np.array([2.0]), np.array([1.0]))


def test_fit_power_law_recovers(rng):
    truth = PowerLawModel(a=400.0, p=0.7, d=5.0)
    fit = fit_power_law(NODES, truth.time(NODES), rng=rng)
    for probe in (6.0, 50.0, 400.0):
        assert fit.time(probe) == pytest.approx(truth.time(probe), rel=0.02)
    with pytest.raises(ValueError):
        fit_power_law(NODES[:2], truth.time(NODES[:2]), rng=rng)


def test_selection_prefers_amdahl_on_amdahl_data(rng):
    truth = PerformanceModel(a=800.0, d=7.0)
    y = truth.time(NODES) * np.exp(rng.normal(0, 0.01, NODES.size))
    sel = select_model(NODES, y, rng=default_rng(5))
    # AICc must prefer the 2-parameter family when it explains the data.
    assert sel.best_family == "amdahl"
    assert "chosen" in sel.render()


def test_selection_prefers_power_law_on_sublinear_data(rng):
    truth = PowerLawModel(a=900.0, p=0.55, d=2.0)
    y = truth.time(NODES) * np.exp(rng.normal(0, 0.01, NODES.size))
    sel = select_model(NODES, y, rng=default_rng(5))
    assert sel.best_family == "power-law"
    # The winner extrapolates better than the Amdahl fit on this data.
    probe = 1024.0
    pl_err = abs(sel.best.model.time(probe) - truth.time(probe))
    am_err = abs(sel.candidates["amdahl"].model.time(probe) - truth.time(probe))
    assert pl_err < am_err


def test_selection_unknown_family():
    with pytest.raises(ValueError, match="unknown model family"):
        select_model(NODES, NODES, families=("splines",))


def test_aicc_infinite_when_underdetermined():
    truth = PerformanceModel(a=100.0, d=1.0)
    small = NODES[:4]
    sel = select_model(small, truth.time(small), rng=default_rng(1))
    # table2 has k=4; with D=4 points AICc cannot be corrected -> +inf.
    assert sel.candidates["table2"].aicc == float("inf")
    assert sel.best_family != "table2"
