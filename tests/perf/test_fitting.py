"""Tests for the least-squares fitting step (Table II)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.data import BenchmarkSuite, ComponentBenchmark
from repro.perf.fitting import (
    fit_component,
    fit_performance_model,
    fit_suite,
    leave_one_out_rmse,
)
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng


def _samples(model, nodes, rng=None, noise=0.0):
    n = np.asarray(nodes, dtype=float)
    y = model.time(n)
    if noise:
        y = y * (1.0 + noise * rng.standard_normal(n.size))
    return n, np.maximum(y, 1e-9)


def test_exact_recovery_amdahl():
    truth = PerformanceModel(a=27180.0, d=45.7)
    n, y = _samples(truth, [104, 256, 512, 1024, 1664])
    fit = fit_performance_model(n, y)
    assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
    assert fit.model.a == pytest.approx(truth.a, rel=1e-3)
    assert fit.model.d == pytest.approx(truth.d, rel=1e-2)
    # Predictions, not parameters, are what HSLB consumes; they must be tight.
    for probe in (150, 800, 1500):
        assert fit.model.time(probe) == pytest.approx(truth.time(probe), rel=1e-4)


def test_exact_recovery_with_nln_term():
    truth = PerformanceModel(a=5000.0, b=0.004, c=1.4, d=10.0)
    n, y = _samples(truth, [8, 16, 32, 64, 128, 256, 512, 1024])
    fit = fit_performance_model(n, y, multistart=8, rng=default_rng(3))
    assert fit.r_squared > 0.99999
    for probe in (12, 100, 900):
        assert fit.model.time(probe) == pytest.approx(truth.time(probe), rel=5e-3)


def test_noisy_fit_r2_near_one(rng):
    """The paper: 'R^2 was very close to 1 for each component'."""
    truth = PerformanceModel(a=7731.0, d=41.9)
    n, y = _samples(truth, [24, 48, 96, 192, 384], rng=rng, noise=0.02)
    fit = fit_performance_model(n, y, rng=rng)
    assert fit.r_squared > 0.99


def test_four_points_enough_for_good_interpolation(rng):
    """§III-C: 'for CESM, four points were enough'."""
    truth = PerformanceModel(a=65290.0, d=14.8)
    n, y = _samples(truth, [138, 302, 900, 2220], rng=rng, noise=0.01)
    fit = fit_performance_model(n, y, rng=rng)
    probe = 486.0
    assert fit.model.time(probe) == pytest.approx(truth.time(probe), rel=0.05)


def test_parameters_nonnegative_constraint_respected(rng):
    # Data from a *decreasing* curve shaped like a/n only; even with noise the
    # fitted parameters must respect Table II line 11.
    truth = PerformanceModel(a=100.0, d=1.0)
    n, y = _samples(truth, [1, 2, 4, 8, 16, 32], rng=rng, noise=0.05)
    fit = fit_performance_model(n, y, rng=rng)
    assert fit.model.a >= 0 and fit.model.b >= 0 and fit.model.d >= 0


def test_convex_flag_bounds_exponent(rng):
    truth = PerformanceModel(a=50.0, b=0.5, c=0.4, d=0.0)  # concave nln term
    n, y = _samples(truth, [1, 2, 4, 8, 16, 32, 64])
    convex_fit = fit_performance_model(n, y, convex=True, rng=rng)
    assert convex_fit.model.c >= 1.0 - 1e-12
    assert convex_fit.model.is_convex
    raw_fit = fit_performance_model(n, y, convex=False, multistart=10, rng=rng)
    assert raw_fit.rss <= convex_fit.rss + 1e-9  # relaxing bounds can't hurt


def test_multistart_finds_no_worse_fit(rng):
    truth = PerformanceModel(a=1000.0, b=0.01, c=1.8, d=3.0)
    n, y = _samples(truth, [4, 8, 16, 32, 64, 128, 256], rng=rng, noise=0.03)
    single = fit_performance_model(n, y, multistart=1, rng=default_rng(1))
    multi = fit_performance_model(n, y, multistart=10, rng=default_rng(1))
    assert multi.rss <= single.rss + 1e-9
    assert multi.starts_tried == 10


def test_local_optima_give_similar_allocation_quality():
    """Paper §III-C: different local optima -> similar predicted times."""
    truth = PerformanceModel(a=2000.0, b=0.02, c=1.2, d=8.0)
    n, y = _samples(truth, [8, 32, 128, 512])
    fits = [
        fit_performance_model(n, y, multistart=1, rng=default_rng(seed))
        for seed in range(5)
    ]
    probes = np.array([16.0, 64.0, 256.0])
    preds = np.array([f.model.time(probes) for f in fits])
    spread = preds.max(axis=0) - preds.min(axis=0)
    assert np.all(spread <= 0.05 * preds.mean(axis=0) + 1e-6)


def test_weights_prioritize_points(rng):
    truth = PerformanceModel(a=100.0, d=5.0)
    n = np.array([2.0, 4.0, 8.0, 16.0, 32.0])
    y = truth.time(n)
    y[-1] *= 3.0  # corrupt the largest-n point
    heavy_small = fit_performance_model(
        n, y, weights=np.array([10.0, 10.0, 10.0, 10.0, 0.01]), rng=rng
    )
    uniform = fit_performance_model(n, y, rng=rng)
    # Down-weighting the corrupted point should recover d much better.
    assert abs(heavy_small.model.d - truth.d) < abs(uniform.model.d - truth.d)


def test_input_validation():
    with pytest.raises(ValueError, match="at least 2"):
        fit_performance_model(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValueError, match="positive"):
        fit_performance_model(np.array([1.0, -2.0]), np.array([1.0, 1.0]))
    with pytest.raises(ValueError, match="equal length"):
        fit_performance_model(np.array([1.0, 2.0]), np.array([1.0]))
    with pytest.raises(ValueError, match="multistart"):
        fit_performance_model(
            np.array([1.0, 2.0]), np.array([2.0, 1.0]), multistart=0
        )
    with pytest.raises(ValueError, match="weights"):
        fit_performance_model(
            np.array([1.0, 2.0]), np.array([2.0, 1.0]), weights=np.array([1.0])
        )


def test_fit_component_and_suite(rng):
    suite = BenchmarkSuite(
        [
            ComponentBenchmark.from_pairs(
                "atm", [(104, 307.0), (512, 98.8), (1024, 72.2), (1664, 62.0)]
            ),
            ComponentBenchmark.from_pairs(
                "ocn", [(24, 364.0), (96, 122.4), (240, 74.1), (384, 62.0)]
            ),
        ]
    )
    fits = fit_suite(suite, rng=rng)
    assert set(fits) == {"atm", "ocn"}
    for f in fits.values():
        assert f.r_squared > 0.999
    single = fit_component(suite["atm"], rng=rng)
    assert single.model.time(104) == pytest.approx(307.0, rel=0.02)


def test_leave_one_out_rmse_small_for_clean_data(rng):
    truth = PerformanceModel(a=400.0, d=2.0)
    n, y = _samples(truth, [4, 8, 16, 32, 64])
    rmse = leave_one_out_rmse(ComponentBenchmark.from_pairs("x", zip(n.astype(int), y)))
    assert rmse < 0.5
    with pytest.raises(ValueError, match="at least 3"):
        leave_one_out_rmse(ComponentBenchmark.from_pairs("x", [(1, 2.0), (2, 1.0)]))


@settings(max_examples=15, deadline=None)
@given(
    a=st.floats(100.0, 1e5),
    d=st.floats(1.0, 50.0),
)
def test_recovery_property_amdahl_family(a, d):
    """Property: noiseless Amdahl data is recovered with near-perfect R²."""
    truth = PerformanceModel(a=a, d=d)
    n = np.array([4.0, 16.0, 64.0, 256.0, 1024.0])
    fit = fit_performance_model(n, truth.time(n), multistart=1)
    assert fit.r_squared > 1 - 1e-6
    preds = fit.model.time(n)
    np.testing.assert_allclose(preds, truth.time(n), rtol=1e-3)


def test_parallel_fit_suite_matches_sequential(rng):
    suite = BenchmarkSuite(
        [
            ComponentBenchmark.from_pairs(
                f"frag{i}",
                [(n, float(PerformanceModel(a=100.0 * (i + 1), d=1.0 + i).time(n)))
                 for n in (2, 4, 8, 16, 32)],
            )
            for i in range(6)
        ]
    )
    sequential = fit_suite(suite, rng=default_rng(4))
    parallel = fit_suite(suite, rng=default_rng(4), workers=3)
    assert set(parallel) == set(sequential)
    for name in sequential:
        probe = 10.0
        assert parallel[name].model.time(probe) == pytest.approx(
            sequential[name].model.time(probe), rel=1e-3
        )
        assert parallel[name].r_squared > 1 - 1e-6
