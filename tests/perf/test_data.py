"""Tests for benchmark data containers."""

import numpy as np
import pytest

from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation


def test_observation_validation():
    ScalingObservation(4, 10.0)
    with pytest.raises(ValueError):
        ScalingObservation(0, 10.0)
    with pytest.raises(ValueError):
        ScalingObservation(2.5, 10.0)
    with pytest.raises(ValueError):
        ScalingObservation(4, -1.0)


def test_component_sorted_by_nodes():
    b = ComponentBenchmark.from_pairs("atm", [(128, 10.0), (16, 80.0), (64, 20.0)])
    np.testing.assert_allclose(b.nodes, [16, 64, 128])
    np.testing.assert_allclose(b.seconds, [80.0, 20.0, 10.0])


def test_replicates_allowed():
    b = ComponentBenchmark.from_pairs("ocn", [(8, 5.0), (8, 5.5)])
    assert len(b) == 2


def test_add_type_checked():
    b = ComponentBenchmark("atm")
    with pytest.raises(TypeError):
        b.add((4, 1.0))


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        ComponentBenchmark("")


def test_node_range_and_coverage():
    b = ComponentBenchmark.from_pairs("ice", [(16, 9.0), (256, 2.0)])
    assert b.node_range == (16, 256)
    assert b.covers(100)
    assert not b.covers(512)
    assert not b.covers(8)


def test_node_range_empty_raises():
    with pytest.raises(ValueError):
        ComponentBenchmark("lnd").node_range


def test_arrays_view():
    b = ComponentBenchmark.from_pairs("atm", [(1, 100.0), (2, 51.0)])
    n, y = b.arrays()
    assert n.shape == y.shape == (2,)


def test_merge_same_component():
    a = ComponentBenchmark.from_pairs("atm", [(1, 100.0)])
    b = ComponentBenchmark.from_pairs("atm", [(2, 51.0)])
    merged = a.merged_with(b)
    assert len(merged) == 2
    with pytest.raises(ValueError):
        a.merged_with(ComponentBenchmark.from_pairs("ocn", [(2, 1.0)]))


def test_suite_mapping_protocol():
    suite = BenchmarkSuite(
        [
            ComponentBenchmark.from_pairs("atm", [(1, 10.0), (2, 6.0)]),
            ComponentBenchmark.from_pairs("ocn", [(1, 5.0)]),
        ]
    )
    assert set(suite) == {"atm", "ocn"}
    assert len(suite) == 2
    assert suite.components == ("atm", "ocn")
    assert len(suite["atm"]) == 2
    assert suite.min_points() == 1


def test_suite_add_merges_duplicates():
    suite = BenchmarkSuite()
    suite.add(ComponentBenchmark.from_pairs("atm", [(1, 10.0)]))
    suite.add(ComponentBenchmark.from_pairs("atm", [(2, 6.0)]))
    assert len(suite["atm"]) == 2


def test_empty_suite_min_points():
    assert BenchmarkSuite().min_points() == 0
