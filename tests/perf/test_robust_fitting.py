"""Robust fitting vs outlier-contaminated benchmark data.

§IV: "The weakest part of the HSLB algorithm, in our opinion, is obtaining
the actual performance data for fitting."  These tests quantify the damage
an outlier benchmark run does to plain least squares and confirm the Huber
mitigation — plus the simulator-side failure injection that produces such
data on purpose.
"""

import numpy as np
import pytest

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.cesm.simulator import CESMSimulator
from repro.core.hslb import HSLBConfig, HSLBOptimizer
from repro.perf.fitting import fit_performance_model
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

TRUTH = PerformanceModel(a=27380.0, d=43.0)
NODES = np.array([32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0])


def _contaminated(rng, outlier_index=2, factor=3.0):
    y = TRUTH.time(NODES) * np.exp(rng.normal(0, 0.01, NODES.size))
    y[outlier_index] *= factor
    return y


def test_unknown_loss_rejected():
    with pytest.raises(ValueError, match="loss"):
        fit_performance_model(NODES, TRUTH.time(NODES), loss="cauchy-ish")


def test_huber_matches_linear_on_clean_data(rng):
    y = TRUTH.time(NODES) * np.exp(rng.normal(0, 0.01, NODES.size))
    linear = fit_performance_model(NODES, y, loss="linear", rng=default_rng(1))
    huber = fit_performance_model(NODES, y, loss="huber", rng=default_rng(1))
    probe = 300.0
    assert huber.model.time(probe) == pytest.approx(
        linear.model.time(probe), rel=0.02
    )


def test_huber_shrugs_off_single_outlier(rng):
    y = _contaminated(rng)
    probe = 700.0
    truth_t = float(TRUTH.time(probe))
    linear = fit_performance_model(NODES, y, loss="linear", rng=default_rng(1))
    huber = fit_performance_model(NODES, y, loss="huber", rng=default_rng(1))
    lin_err = abs(float(linear.model.time(probe)) - truth_t) / truth_t
    hub_err = abs(float(huber.model.time(probe)) - truth_t) / truth_t
    assert hub_err < lin_err  # robust fit strictly better here
    assert hub_err < 0.05     # ...and close to the truth


def test_soft_l1_also_robust(rng):
    y = _contaminated(rng)
    probe = 700.0
    fit = fit_performance_model(NODES, y, loss="soft_l1", rng=default_rng(1))
    assert float(fit.model.time(probe)) == pytest.approx(
        float(TRUTH.time(probe)), rel=0.08
    )


# --- simulator failure injection ---------------------------------------------


def test_outlier_knob_validation():
    with pytest.raises(ValueError, match="outlier_prob"):
        CESMSimulator(one_degree(), outlier_prob=1.0)
    with pytest.raises(ValueError, match="outlier_scale"):
        CESMSimulator(one_degree(), outlier_prob=0.1, outlier_scale=0.5)


def test_outlier_injection_statistics():
    clean = CESMSimulator(one_degree())
    dirty = CESMSimulator(one_degree(), outlier_prob=0.3, outlier_scale=4.0)
    rng_c, rng_d = default_rng(3), default_rng(3)
    base = np.array([clean.component_time("atm", 104, rng_c) for _ in range(200)])
    spiked = np.array([dirty.component_time("atm", 104, rng_d) for _ in range(200)])
    # Injection only slows things down and produces a heavy right tail.
    assert spiked.mean() > base.mean()
    assert (spiked > 1.4 * float(TRUTH.time(104))).sum() > 20


def test_pipeline_with_outliers_huber_beats_plain():
    """End to end: contaminated gather campaign, plain vs robust fits.

    The robust pipeline's *predictions* must track reality better (the
    allocation itself is often forgiving — the prediction error is where
    bad fits show up first).
    """
    def run(loss, seed=31):
        app = CESMApplication(one_degree(), outlier_prob=0.18, outlier_scale=4.0,
                              benchmark_runs_per_count=2)
        opt = HSLBOptimizer(app, HSLBConfig(fit_loss=loss))
        rng = default_rng(seed)
        suite = opt.gather([32, 64, 128, 256, 512, 1024, 2048], rng)
        fits = opt.fit(suite, rng)
        # Judge fits against the noise-free ground truth at the target size.
        errs = []
        for comp, fit in fits.items():
            truth = app.simulator.true_component_time(comp, 100)
            errs.append(abs(float(fit.model.time(100)) - truth) / truth)
        return float(np.mean(errs))

    plain_err = run("linear")
    robust_err = run("huber")
    assert robust_err <= plain_err + 1e-9
    assert robust_err < 0.15


def test_config_rejects_unknown_loss():
    with pytest.raises(ValueError, match="fit loss"):
        HSLBConfig(fit_loss="tukey")
