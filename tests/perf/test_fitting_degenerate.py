"""Degenerate-component handling and robust-loss behavior of fit_suite."""

import numpy as np
import pytest

from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.fitting import fit_component, fit_suite
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng


def _bench(name, counts, model, inflate=()):
    """Synthetic benchmark of ``model`` with 4x outliers at ``inflate``."""
    obs = []
    for n in counts:
        t = float(model.time(n))
        obs.append(ScalingObservation(n, 4.0 * t if n in inflate else t))
    return ComponentBenchmark(name, obs)


MODEL = PerformanceModel(a=800.0, d=3.0)
COUNTS = (8, 16, 32, 64, 128, 256)


def test_fit_suite_raises_on_degenerate_by_default():
    suite = BenchmarkSuite(
        [
            _bench("good", COUNTS, MODEL),
            ComponentBenchmark("thin", [ScalingObservation(16, 53.0)]),
        ]
    )
    with pytest.raises(ValueError, match="'thin' is unfittable"):
        fit_suite(suite, rng=default_rng(0))


def test_fit_suite_skips_and_reports_degenerate():
    suite = BenchmarkSuite(
        [
            _bench("good", COUNTS, MODEL),
            ComponentBenchmark("thin", [ScalingObservation(16, 53.0)]),
        ]
    )
    skipped = {}
    fits = fit_suite(
        suite, rng=default_rng(0), skip_degenerate=True, skipped=skipped
    )
    assert set(fits) == {"good"}
    assert set(skipped) == {"thin"}
    assert "1" in skipped["thin"]  # reason mentions the point count
    # The healthy component's fit is unaffected by the skip.
    assert float(fits["good"].model.time(64)) == pytest.approx(
        float(MODEL.time(64)), rel=0.05
    )


def test_fit_suite_skip_degenerate_without_out_mapping():
    suite = BenchmarkSuite(
        [ComponentBenchmark("thin", [ScalingObservation(16, 53.0)])]
    )
    assert fit_suite(suite, rng=default_rng(0), skip_degenerate=True) == {}


def test_all_outlier_column_huber_beats_linear():
    """R2 unit check: when every replicate at one node count is inflated 4x,
    the robust loss shrugs the column off while least squares chases it."""
    bench = _bench("atm", COUNTS, MODEL, inflate=(64,))
    probes = np.array([24, 48, 96, 192], dtype=float)
    truth = np.asarray(MODEL.time(probes))
    errors = {}
    for loss in ("linear", "huber"):
        fit = fit_component(bench, rng=default_rng(3), loss=loss)
        pred = np.asarray(fit.model.time(probes))
        errors[loss] = float(np.mean(np.abs(pred - truth) / truth))
    assert errors["huber"] < errors["linear"]
    # The robust fit should be close to the generating model; the plain
    # fit is dragged visibly off by the poisoned column.
    assert errors["huber"] < 0.05
    assert errors["linear"] > errors["huber"] * 2
