"""Drift models: shapes, determinism, clamps, and the named presets."""

import numpy as np
import pytest

from repro.dynlb.drift import DriftProfile, DriftSpec, drift_preset


def test_no_spec_means_unit_multiplier():
    profile = DriftProfile({}, steps=10)
    assert profile.multiplier("anything", 0) == 1.0
    assert profile.multiplier("anything", 9) == 1.0


def test_linear_reaches_rate_at_last_step():
    profile = DriftProfile({"atm": DriftSpec("linear", rate=0.6)}, steps=21)
    assert profile.multiplier("atm", 0) == 1.0
    assert profile.multiplier("atm", 20) == pytest.approx(1.6)
    assert profile.multiplier("atm", 10) == pytest.approx(1.3)


def test_step_jumps_at_the_configured_fraction():
    profile = DriftProfile({"c": DriftSpec("step", rate=1.0, at=0.5)}, steps=11)
    assert profile.multiplier("c", 4) == 1.0
    assert profile.multiplier("c", 5) == pytest.approx(2.0)
    assert profile.multiplier("c", 10) == pytest.approx(2.0)


def test_sine_oscillates_around_one():
    profile = DriftProfile({"c": DriftSpec("sine", rate=0.5, period=1.0)}, steps=101)
    values = [profile.multiplier("c", s) for s in range(101)]
    assert max(values) == pytest.approx(1.5, abs=0.01)
    assert min(values) == pytest.approx(0.5, abs=0.01)
    assert values[0] == pytest.approx(1.0)


def test_walk_is_deterministic_and_order_independent():
    a = DriftProfile({"c": DriftSpec("walk", rate=0.2)}, steps=30, seed=5)
    b = DriftProfile({"c": DriftSpec("walk", rate=0.2)}, steps=30, seed=5)
    # Query b out of order: keyed draws must not depend on call sequence.
    late_b = b.multiplier("c", 25)
    assert a.multiplier("c", 25) == late_b
    assert [a.multiplier("c", s) for s in range(30)] == [
        b.multiplier("c", s) for s in range(30)
    ]
    other_seed = DriftProfile({"c": DriftSpec("walk", rate=0.2)}, steps=30, seed=6)
    assert other_seed.multiplier("c", 25) != late_b


def test_multiplier_clamps_to_floor_and_ceiling():
    profile = DriftProfile(
        {"up": DriftSpec("linear", rate=100.0), "down": DriftSpec("linear", rate=-5.0)},
        steps=11,
    )
    assert profile.multiplier("up", 10) == 20.0
    assert profile.multiplier("down", 10) == 0.05


def test_validation_errors():
    with pytest.raises(ValueError, match="unknown drift kind"):
        DriftSpec("quadratic")
    with pytest.raises(ValueError, match="must be in"):
        DriftSpec("step", at=1.5)
    with pytest.raises(ValueError, match="steps"):
        DriftProfile({}, steps=0)
    with pytest.raises(ValueError, match="outside run"):
        DriftProfile({}, steps=5).multiplier("c", 5)


def test_linear_preset_drifts_first_component_up_rest_down():
    profile = drift_preset("linear", ("atm", "ice", "ocn"), steps=11, rate=0.6)
    assert profile.multiplier("atm", 10) == pytest.approx(1.6)
    assert profile.multiplier("ice", 10) == pytest.approx(1.0 - 0.2)
    assert profile.multiplier("ocn", 10) == pytest.approx(1.0 - 0.2)


def test_walk_preset_scales_sigma_with_steps():
    profile = drift_preset("walk", ("a", "b"), steps=100, rate=0.5, seed=1)
    assert profile.spec("a").kind == "walk"
    assert profile.spec("a").rate == pytest.approx(0.5 / np.sqrt(100))


def test_unknown_preset_is_an_error():
    with pytest.raises(ValueError, match="unknown drift preset"):
        drift_preset("chaos", ("a",), steps=10)
    with pytest.raises(ValueError, match="at least one component"):
        drift_preset("linear", (), steps=10)


def test_describe_names_active_components_only():
    profile = drift_preset("linear", ("atm", "ocn"), steps=10, rate=0.3, seed=4)
    text = profile.describe()
    assert "atm:linear+0.3" in text
    assert "seed=4" in text
    assert DriftProfile({}, steps=3).describe() == "Drift(none, seed=0)"
