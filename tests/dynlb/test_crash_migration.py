"""The fault/rebalance interplay: a node crash during a migration window.

The invariant pinned here is the one the controller's recovery path
promises: after a crash — even one landing *inside* an open migration
window — the run continues with an allocation that (a) aborts the
in-flight move, (b) fits entirely within the surviving node budget, and
(c) still hosts every component (the crashed component restarts on nodes
carved out of the survivors, exactly like the PR 1 replan recovery).
"""

import pytest

from repro.dynlb.controller import DynlbConfig, RebalanceController, compare_strategies
from repro.dynlb.drift import DriftProfile, DriftSpec
from repro.dynlb.migration import MigrationCostModel
from repro.dynlb.workload import DynamicWorkload, fmo_workload
from repro.faults.plan import FaultPlan
from repro.perf.model import PerformanceModel

_MODELS = {
    "big": PerformanceModel(a=4000.0, d=2.0),
    "mid": PerformanceModel(a=1500.0, d=1.0),
    "small": PerformanceModel(a=500.0, d=0.5),
}


def _workload(crash_step, crash_component="mid", steps=20):
    drift = DriftProfile({"big": DriftSpec("linear", rate=2.0)}, steps)
    plan = FaultPlan(seed=1, crash_step=crash_step, crash_component=crash_component)
    return DynamicWorkload(
        "crashy", _MODELS, total_nodes=48, steps=steps, drift=drift,
        noise=0.0, imbalance=0.0, seed=11, faults=plan,
    )


def _window_config(migration_steps=3):
    # Free, always-beneficial migrations: the decision at step 5 is
    # guaranteed to open a window spanning steps 6..8.
    return DynlbConfig(
        interval=6,
        migration_steps=migration_steps,
        gain_factor=0.0,
        migration=MigrationCostModel(fixed_seconds=0.0, per_node_seconds=0.0),
    )


def test_crash_inside_the_window_aborts_the_in_flight_move():
    # Decision at step 5 opens a window landing at step 8; crash at 7.
    result = RebalanceController(_workload(crash_step=7), "diffusion",
                                 _window_config()).run()
    assert result.crash is not None
    assert result.crash.step == 7
    assert result.crash.aborted_migration is True
    assert result.aborted == 1
    aborted = [e for e in result.events if e.outcome == "aborted"]
    assert aborted[0].step == 7
    # The aborted target never became the running allocation: the recovery
    # event's `old` is the pre-crash plan, not the in-flight target.
    recovery = [e for e in result.events if e.reason == "crash"]
    assert len(recovery) == 1
    assert recovery[0].outcome == "applied"
    assert recovery[0].old == aborted[0].old


def test_recovery_allocation_is_consistent_with_the_surviving_budget():
    workload = _workload(crash_step=7)
    result = RebalanceController(workload, "diffusion", _window_config()).run()
    survivors = workload.total_nodes - result.crash.lost_nodes
    recovery = [e for e in result.events if e.reason == "crash"][0]
    # (b) nothing is scheduled on the dead nodes...
    assert sum(recovery.new.values()) <= survivors
    assert sum(result.final_allocation.values()) <= survivors
    # (c) ...and the crashed component itself is restarted on survivors.
    assert set(recovery.new) == set(workload.components)
    assert recovery.new["mid"] >= 1
    assert all(n >= 1 for n in result.final_allocation.values())
    # Every post-crash migration stays inside the shrunken budget too.
    for event in result.events:
        if event.outcome == "applied" and event.step > 7:
            assert sum(event.new.values()) <= survivors


def test_crash_outside_the_window_aborts_nothing():
    # The first window spans steps 6..8 and the next decision is at 11,
    # so a crash at 10 finds no pending move.
    result = RebalanceController(_workload(crash_step=10), "diffusion",
                                 _window_config()).run()
    assert result.crash is not None
    assert result.crash.aborted_migration is False
    assert result.aborted == 0
    assert result.migrations >= 1  # the step-8 landing plus the forced recovery


def test_crash_penalty_and_forced_move_are_charged():
    result = RebalanceController(_workload(crash_step=7), "diffusion",
                                 _window_config()).run()
    assert result.crash_seconds > 0.0
    assert result.crash_seconds == pytest.approx(result.crash.penalty_seconds)
    assert result.total_seconds == pytest.approx(
        result.compute_seconds + result.migration_seconds + result.crash_seconds
    )


def test_every_strategy_recovers_consistently():
    """Static and MINLP strategies alike must satisfy the invariant."""
    for strategy in ("static", "hslb", "sweep"):
        workload = _workload(crash_step=7)
        result = RebalanceController(workload, strategy, _window_config()).run()
        assert result.crash is not None, strategy
        survivors = workload.total_nodes - result.crash.lost_nodes
        assert sum(result.final_allocation.values()) <= survivors, strategy
        assert set(result.final_allocation) == set(workload.components), strategy


def test_crash_recovery_is_deterministic():
    runs = [
        RebalanceController(_workload(crash_step=7), "diffusion",
                            _window_config()).run().to_dict()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_fmo_crash_scenario_end_to_end():
    """The simulator-backed path: a fragment group dies mid-run."""
    plan = FaultPlan(seed=3, crash_step=9)
    workload = fmo_workload(
        fragments=5, total_nodes=40, steps=18, seed=3, faults=plan
    )
    results = compare_strategies(
        workload, ("static", "diffusion"), DynlbConfig(interval=4)
    )
    for name, result in results.items():
        assert result.crash is not None, name
        survivors = workload.total_nodes - result.crash.lost_nodes
        assert sum(result.final_allocation.values()) <= survivors, name
        assert set(result.final_allocation) == set(workload.components), name
