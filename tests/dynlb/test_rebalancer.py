"""Rebalancing strategies: conservation, floors, warm starts, cut pooling."""

import pytest

from repro.core.spec import Allocation
from repro.dynlb.rebalancer import (
    STRATEGIES,
    DiffusionRebalancer,
    HSLBRebalancer,
    RebalanceContext,
    StaticRebalancer,
    SweepRebalancer,
    TwoLevelRebalancer,
    make_rebalancer,
)
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

_MODELS = {
    "big": PerformanceModel(a=4000.0, d=2.0),
    "mid": PerformanceModel(a=1500.0, d=1.0),
    "small": PerformanceModel(a=500.0, d=0.5),
}


def _ctx(allocation=None, total=48, models=None, min_nodes=None):
    models = models or dict(_MODELS)
    allocation = allocation or {"big": 16, "mid": 16, "small": 16}
    return RebalanceContext(
        step=0,
        models=models,
        allocation=Allocation(allocation),
        total_nodes=total,
        min_nodes=min_nodes or {},
        steps_remaining=10,
        rng=default_rng(0),
    )


def test_registry_builds_every_strategy():
    for name in STRATEGIES:
        assert make_rebalancer(name).name == name
    with pytest.raises(ValueError, match="unknown rebalancer"):
        make_rebalancer("magic")


def test_static_never_moves():
    ctx = _ctx()
    assert dict(StaticRebalancer().propose(ctx).items()) == dict(ctx.allocation.items())


def test_diffusion_conserves_nodes_and_helps_the_slow_component():
    ctx = _ctx()
    proposal = DiffusionRebalancer().propose(ctx)
    assert proposal.total() == ctx.allocation.total()
    # "big" is the bottleneck at a uniform split; diffusion must feed it.
    assert proposal["big"] > ctx.allocation["big"]
    assert proposal["small"] < ctx.allocation["small"]
    before = max(_MODELS[c].time(ctx.allocation[c]) for c in _MODELS)
    after = max(_MODELS[c].time(proposal[c]) for c in _MODELS)
    assert after < before


def test_diffusion_respects_floors():
    ctx = _ctx(min_nodes={"small": 10})
    proposal = DiffusionRebalancer().propose(ctx)
    assert proposal["small"] >= 10


def test_diffusion_two_components_use_a_single_pair():
    models = {"a": PerformanceModel(a=4000.0), "b": PerformanceModel(a=500.0)}
    ctx = _ctx(allocation={"a": 10, "b": 10}, total=20, models=models)
    proposal = DiffusionRebalancer().propose(ctx)
    assert proposal.total() == 20
    assert proposal["a"] > proposal["b"]


def test_diffusion_validation():
    with pytest.raises(ValueError, match="eta"):
        DiffusionRebalancer(eta=0.0)


def test_sweep_uses_the_whole_budget_proportionally():
    ctx = _ctx()
    proposal = SweepRebalancer().propose(ctx)
    assert proposal.total() == ctx.total_nodes
    assert proposal["big"] > proposal["mid"] > proposal["small"]
    before = max(_MODELS[c].time(ctx.allocation[c]) for c in _MODELS)
    after = max(_MODELS[c].time(proposal[c]) for c in _MODELS)
    assert after < before


def test_sweep_respects_floors_and_validates():
    ctx = _ctx(min_nodes={"small": 12})
    assert SweepRebalancer().propose(ctx)["small"] >= 12
    with pytest.raises(ValueError, match="passes"):
        SweepRebalancer(passes=0)


def test_hslb_resolve_beats_the_uniform_split():
    ctx = _ctx()
    proposal = HSLBRebalancer().propose(ctx)
    assert proposal.total() <= ctx.total_nodes
    assert all(proposal[c] >= 1 for c in _MODELS)
    before = max(_MODELS[c].time(ctx.allocation[c]) for c in _MODELS)
    after = max(_MODELS[c].time(proposal[c]) for c in _MODELS)
    assert after < before


def test_hslb_cut_pool_reused_only_while_curves_are_unchanged():
    reb = HSLBRebalancer()
    reb.propose(_ctx())
    assert (reb.solves, reb.pool_reuses) == (1, 0)
    reb.propose(_ctx())  # identical curves: pooled cuts are still valid
    assert (reb.solves, reb.pool_reuses) == (2, 1)
    moved = dict(_MODELS)
    moved["big"] = PerformanceModel(a=4400.0, d=2.2)  # refitter moved the curve
    reb.propose(_ctx(models=moved))
    assert (reb.solves, reb.pool_reuses) == (3, 1)


def test_two_level_is_hslb_with_self_scheduling_inside():
    reb = TwoLevelRebalancer()
    assert isinstance(reb, HSLBRebalancer)
    assert reb.intra_policy == "self"
    assert "self" in reb.describe()


def test_proposals_respect_a_shrunken_budget():
    """Crash recovery hands strategies a smaller total; floors still hold."""
    for name in ("hslb", "diffusion", "sweep"):
        ctx = _ctx(allocation={"big": 10, "mid": 5, "small": 3}, total=18)
        proposal = make_rebalancer(name).propose(ctx)
        assert proposal.total() <= 18
        assert all(proposal[c] >= 1 for c in _MODELS)
