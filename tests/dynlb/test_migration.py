"""Migration cost model and event records."""

import pytest

from repro.dynlb.migration import MigrationCostModel, MigrationEvent


def test_cost_counts_only_positive_growth():
    model = MigrationCostModel(fixed_seconds=5.0, per_node_seconds=0.5)
    old = {"a": 10, "b": 20, "c": 5}
    new = {"a": 16, "b": 14, "c": 5}  # 6 nodes move from b to a
    assert model.nodes_moved(old, new) == 6
    assert model.cost(old, new) == pytest.approx(5.0 + 0.5 * 6)


def test_no_move_costs_nothing():
    model = MigrationCostModel()
    alloc = {"a": 10, "b": 20}
    assert model.nodes_moved(alloc, alloc) == 0
    assert model.cost(alloc, alloc) == 0.0


def test_new_component_counts_as_growth():
    model = MigrationCostModel(fixed_seconds=1.0, per_node_seconds=1.0)
    assert model.cost({"a": 10}, {"a": 6, "b": 4}) == pytest.approx(1.0 + 4.0)


def test_calibrate_derives_cost_from_a_step_time():
    model = MigrationCostModel.calibrate(100.0)
    assert model.fixed_seconds == pytest.approx(50.0)
    assert model.per_node_seconds == pytest.approx(2.0)
    custom = MigrationCostModel.calibrate(
        100.0, restart_fraction=0.1, per_node_fraction=0.01
    )
    assert custom.fixed_seconds == pytest.approx(10.0)
    assert custom.per_node_seconds == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ValueError):
        MigrationCostModel(fixed_seconds=-1.0)
    with pytest.raises(ValueError):
        MigrationEvent(
            step=0, old={}, new={}, predicted_gain=0.0, cost=0.0,
            reason="whim", outcome="applied",
        )
    with pytest.raises(ValueError):
        MigrationEvent(
            step=0, old={}, new={}, predicted_gain=0.0, cost=0.0,
            reason="interval", outcome="vanished",
        )


def test_event_describe_summarizes_the_move():
    event = MigrationEvent(
        step=7,
        old={"a": 10, "b": 20},
        new={"a": 16, "b": 14},
        predicted_gain=120.0,
        cost=8.0,
        reason="interval",
        outcome="applied",
    )
    assert event.nodes_moved == 6
    text = event.describe()
    assert "step 7" in text
    assert "applied" in text
    assert "6" in text
