"""The rebalance controller: gating, windows, determinism, comparisons."""

import pytest

from repro.dynlb.controller import (
    DynlbConfig,
    RebalanceController,
    compare_strategies,
)
from repro.dynlb.drift import DriftProfile, DriftSpec
from repro.dynlb.migration import MigrationCostModel
from repro.dynlb.workload import DynamicWorkload
from repro.perf.model import PerformanceModel

_MODELS = {
    "big": PerformanceModel(a=4000.0, d=2.0),
    "mid": PerformanceModel(a=1500.0, d=1.0),
    "small": PerformanceModel(a=500.0, d=0.5),
}


def _drifting_workload(steps=24, rate=2.0, **kw):
    """'big' slows down hard over the run: the frozen plan decays."""
    drift = DriftProfile({"big": DriftSpec("linear", rate=rate)}, steps)
    defaults = dict(total_nodes=48, steps=steps, drift=drift, noise=0.0,
                    imbalance=0.0, seed=11)
    defaults.update(kw)
    return DynamicWorkload("drifty", _MODELS, **defaults)


def test_static_strategy_never_migrates():
    result = RebalanceController(_drifting_workload(), "static").run()
    assert result.strategy == "static"
    assert result.events == []
    assert result.final_allocation == result.initial_allocation
    assert result.migration_seconds == 0.0
    assert len(result.step_makespans) == 24
    assert result.total_seconds == pytest.approx(sum(result.step_makespans))


def test_dynamic_strategy_beats_static_under_drift():
    workload = _drifting_workload()
    config = DynlbConfig(interval=6)
    static = RebalanceController(workload, "static", config).run()
    dynamic = RebalanceController(workload, "diffusion", config).run()
    assert dynamic.migrations >= 1
    assert dynamic.total_seconds < static.total_seconds
    # The accounting identity: compute + stalls + crash penalty.
    assert dynamic.total_seconds == pytest.approx(
        dynamic.compute_seconds + dynamic.migration_seconds + dynamic.crash_seconds
    )


def test_runs_are_bit_identical_under_a_fixed_seed():
    first = RebalanceController(_drifting_workload(), "diffusion").run()
    second = RebalanceController(_drifting_workload(), "diffusion").run()
    assert first.to_dict() == second.to_dict()
    assert first.step_makespans == second.step_makespans


def test_prohibitive_migration_cost_gates_every_move():
    workload = _drifting_workload()
    config = DynlbConfig(
        interval=6,
        migration=MigrationCostModel(fixed_seconds=1e9, per_node_seconds=0.0),
    )
    result = RebalanceController(workload, "diffusion", config).run()
    assert result.migrations == 0
    assert result.gated >= 1
    assert result.migration_seconds == 0.0
    assert result.final_allocation == result.initial_allocation


def test_free_migrations_are_taken_whenever_they_help():
    workload = _drifting_workload()
    config = DynlbConfig(
        interval=6,
        gain_factor=0.0,
        migration=MigrationCostModel(fixed_seconds=0.0, per_node_seconds=0.0),
    )
    result = RebalanceController(workload, "diffusion", config).run()
    assert result.migrations >= 2
    assert result.gated == 0


def test_migration_window_spans_migration_steps():
    workload = _drifting_workload()
    config = DynlbConfig(
        interval=6,
        migration_steps=3,
        gain_factor=0.0,
        migration=MigrationCostModel(fixed_seconds=0.0, per_node_seconds=0.0),
    )
    result = RebalanceController(workload, "diffusion", config).run()
    applied = [e for e in result.events if e.outcome == "applied"]
    assert applied
    # Decisions land on interval boundaries (step 5, 11, ...); the window
    # keeps the old plan running for migration_steps more steps.
    assert all((e.step - 5) % 6 == 3 for e in applied)


def test_max_migrations_caps_thrashing():
    workload = _drifting_workload()
    config = DynlbConfig(
        interval=4,
        gain_factor=0.0,
        migration=MigrationCostModel(fixed_seconds=0.0, per_node_seconds=0.0),
        max_migrations=1,
    )
    result = RebalanceController(workload, "diffusion", config).run()
    assert result.migrations == 1


def test_migration_cost_is_charged_to_the_total():
    workload = _drifting_workload()
    cost = MigrationCostModel(fixed_seconds=7.0, per_node_seconds=0.0)
    config = DynlbConfig(interval=6, gain_factor=0.0, migration=cost)
    result = RebalanceController(workload, "diffusion", config).run()
    assert result.migrations >= 1
    assert result.migration_seconds == pytest.approx(7.0 * result.migrations)


def test_stale_models_trigger_out_of_band_decisions():
    """A hard step change between decision points trips the staleness path."""
    steps = 40
    drift = DriftProfile({"big": DriftSpec("step", rate=4.0, at=0.25)}, steps)
    workload = DynamicWorkload(
        "steppy", _MODELS, total_nodes=48, steps=steps, drift=drift,
        noise=0.0, imbalance=0.0, seed=3,
    )
    config = DynlbConfig(interval=1000)  # cadence never fires on its own
    result = RebalanceController(workload, "diffusion", config).run()
    assert result.stale_events >= 1
    assert any(e.reason == "stale" for e in result.events)


def test_compare_strategies_shares_the_same_draws():
    workload = _drifting_workload(steps=12)
    results = compare_strategies(workload, ("static", "diffusion", "sweep"))
    assert set(results) == {"static", "diffusion", "sweep"}
    for name, result in results.items():
        assert result.strategy == name
        assert result.steps == 12
    # Until the first migration lands, every strategy sees identical steps.
    assert results["static"].step_makespans[0] == pytest.approx(
        results["diffusion"].step_makespans[0]
    )


def test_to_dict_round_trips_the_essentials():
    result = RebalanceController(_drifting_workload(steps=8), "sweep").run()
    doc = result.to_dict()
    assert doc["strategy"] == "sweep"
    assert doc["steps"] == 8
    assert doc["total_seconds"] == pytest.approx(result.total_seconds)
    assert set(doc["final_allocation"]) == set(_MODELS)
    assert doc["crash"] is None


def test_config_validation():
    with pytest.raises(ValueError, match="interval"):
        DynlbConfig(interval=0)
    with pytest.raises(ValueError, match="gain_factor"):
        DynlbConfig(gain_factor=-0.1)
    with pytest.raises(ValueError, match="migration_steps"):
        DynlbConfig(migration_steps=0)
