"""The streaming timing feed: keyed draws, intra policies, crash events."""

import pytest

from repro.core.spec import Allocation
from repro.dynlb.drift import DriftProfile, DriftSpec
from repro.dynlb.workload import DynamicWorkload, cesm_workload, fmo_workload
from repro.faults.plan import FaultPlan, NodeCrashError
from repro.perf.model import PerformanceModel

_MODELS = {
    "big": PerformanceModel(a=4000.0, d=2.0),
    "mid": PerformanceModel(a=1500.0, d=1.0),
    "small": PerformanceModel(a=500.0, d=0.5),
}


def _workload(**kw):
    defaults = dict(total_nodes=48, steps=20, seed=3)
    defaults.update(kw)
    return DynamicWorkload("toy", _MODELS, **defaults)


def test_draws_are_keyed_not_ordered():
    """Same (component, step) sees the same machine under any allocation."""
    w1 = _workload()
    w2 = _workload()
    a = Allocation({"big": 30, "mid": 12, "small": 6})
    b = Allocation({"big": 10, "mid": 20, "small": 18})
    for step in (0, 7, 19):
        t1 = w1.step_times(step, a)
        t2 = w2.step_times(step, b)
        for c in w1.components:
            # The multiplicative machine state (jitter x imbalance) is
            # identical; only the deterministic T(n) part differs.
            assert t1[c] / _MODELS[c].time(a[c]) == pytest.approx(
                t2[c] / _MODELS[c].time(b[c])
            )


def test_component_time_is_deterministic_across_instances():
    assert _workload().component_time("big", 5, 16) == _workload().component_time(
        "big", 5, 16
    )
    assert _workload(seed=9).component_time("big", 5, 16) != _workload(
        seed=10
    ).component_time("big", 5, 16)


def test_self_policy_trades_imbalance_for_fixed_overhead():
    w = _workload(noise=0.0, imbalance=0.2, self_overhead=0.03)
    drifted = w.true_model("big", 4).time(16)
    assert w.component_time("big", 4, 16, policy="self") == pytest.approx(
        drifted * 1.03
    )
    static = w.component_time("big", 4, 16, policy="static")
    assert drifted <= static <= drifted * 1.2


def test_true_model_applies_drift_multiplier():
    drift = DriftProfile({"big": DriftSpec("linear", rate=1.0)}, steps=11)
    w = _workload(steps=11, drift=drift, noise=0.0, imbalance=0.0)
    assert w.true_model("big", 10).time(16) == pytest.approx(
        2.0 * _MODELS["big"].time(16)
    )
    assert w.component_time("big", 10, 16) == pytest.approx(
        2.0 * _MODELS["big"].time(16)
    )


def test_initial_allocation_fits_budget_and_floors():
    w = _workload(min_nodes={"small": 4})
    alloc = w.initial_allocation()
    assert alloc.total() <= w.total_nodes
    assert alloc["small"] >= 4
    assert all(alloc[c] >= 1 for c in w.components)
    # The dominant component gets the most nodes.
    assert alloc["big"] > alloc["small"]


def test_crash_event_fires_only_at_crash_step():
    plan = FaultPlan(seed=1, crash_step=7)
    w = _workload(faults=plan)
    alloc = w.initial_allocation()
    assert w.crash_event(6, alloc) is None
    assert w.crash_event(8, alloc) is None
    err = w.crash_event(7, alloc)
    assert isinstance(err, NodeCrashError)
    # No component named: the largest group dies.
    assert err.component == "big"
    assert err.lost_nodes == alloc["big"]


def test_crash_event_targets_named_component():
    plan = FaultPlan(seed=1, crash_step=3, crash_component="mid", crash_fraction=0.25)
    w = _workload(faults=plan)
    err = w.crash_event(3, w.initial_allocation())
    assert err.component == "mid"
    assert err.fraction == 0.25


def test_no_faults_means_no_crash():
    w = _workload()
    assert w.crash_event(0, w.initial_allocation()) is None


def test_validation_errors():
    with pytest.raises(ValueError, match="at least one component"):
        DynamicWorkload("x", {}, total_nodes=4, steps=5)
    with pytest.raises(ValueError, match="steps"):
        _workload(steps=0)
    with pytest.raises(ValueError, match="cannot host"):
        _workload(total_nodes=2)
    with pytest.raises(ValueError, match="unknown intra policy"):
        _workload().component_time("big", 0, 8, policy="guided")
    with pytest.raises(ValueError, match=">= 1 node"):
        _workload().component_time("big", 0, 0)


def test_cesm_builder_wires_ground_truth_components():
    w = cesm_workload(total_nodes=64, steps=10, seed=2)
    assert set(w.components) == {"atm", "ice", "lnd", "ocn"}
    assert w.name == "cesm-1deg"
    # The linear preset drifts the atmosphere (the dominant component) up.
    assert w.drift.spec("atm").rate > 0


def test_fmo_builder_one_component_per_fragment():
    w = fmo_workload(fragments=5, total_nodes=32, steps=10, seed=2)
    assert w.components == tuple(f"frag{i}" for i in range(5))
    assert w.name.startswith("fmo-")


def test_describe_mentions_faults_when_present():
    plan = FaultPlan(seed=1, crash_step=4)
    text = _workload(faults=plan).describe()
    assert "crash_step=4" in text
    assert "toy: 3 components x 20 steps on 48 nodes" in text
