"""Drift-aware refitter: scale tracking, staleness, full-refit guards."""

import pytest

from repro.dynlb.refit import DriftAwareRefitter, RefitConfig
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

_BASE = {"c": PerformanceModel(a=2000.0, d=5.0)}


def test_scale_converges_to_the_observed_ratio():
    refitter = DriftAwareRefitter(_BASE)
    truth = 1.5 * _BASE["c"].time(16)
    for step in range(40):
        refitter.observe(step, "c", 16, truth)
    assert refitter.scale("c") == pytest.approx(1.5, rel=1e-3)
    assert refitter.model("c").time(16) == pytest.approx(truth, rel=1e-3)
    # Uniform scaling preserves the curve's shape, not just one point.
    assert refitter.model("c").time(64) == pytest.approx(
        1.5 * _BASE["c"].time(64), rel=1e-3
    )


def test_error_stays_low_when_the_model_tracks():
    refitter = DriftAwareRefitter(_BASE)
    for step in range(20):
        refitter.observe(step, "c", 16, _BASE["c"].time(16))
    assert refitter.error("c") < 0.01
    assert not refitter.any_stale()


def test_staleness_trips_after_patience_and_clears():
    config = RefitConfig(alpha=0.25, stale_error=0.15, stale_patience=2)
    refitter = DriftAwareRefitter(_BASE, config)
    base_time = _BASE["c"].time(16)
    # A sudden 3x slowdown: the EWMA scale lags, so the relative error
    # stays above the threshold for several consecutive steps.
    for step in range(4):
        refitter.observe(step, "c", 16, 3.0 * base_time)
    assert refitter.is_stale("c")
    assert refitter.any_stale()
    refitter.clear_stale()
    assert not refitter.any_stale()


def test_full_refit_refuses_clustered_node_counts():
    """A window that only saw one n (or a narrow band) must not refit."""
    refitter = DriftAwareRefitter(_BASE, rng=default_rng(0))
    for step in range(12):
        refitter.observe(step, "c", 16, 2.0 * _BASE["c"].time(16))
    assert refitter.maybe_full_refit("c") is False
    # A second count inside the span guard still refuses.
    for step in range(12, 18):
        refitter.observe(step, "c", 17, 2.0 * _BASE["c"].time(17))
    assert refitter.maybe_full_refit("c") is False
    assert refitter.full_refits == 0


def test_full_refit_needs_enough_points():
    refitter = DriftAwareRefitter(_BASE, RefitConfig(min_refit_points=6))
    refitter.observe(0, "c", 8, _BASE["c"].time(8))
    refitter.observe(1, "c", 32, _BASE["c"].time(32))
    assert refitter.maybe_full_refit("c") is False


def test_full_refit_recovers_a_shape_change():
    """With n-diversity, the refit recovers a curve a pure scale cannot."""
    truth = PerformanceModel(a=6000.0, d=1.0)  # different a/d mix than base
    refitter = DriftAwareRefitter(_BASE, rng=default_rng(1))
    counts = [8, 16, 32, 48, 8, 16, 32, 48]
    for step, n in enumerate(counts):
        refitter.observe(step, "c", n, truth.time(n))
    assert refitter.maybe_full_refit("c") is True
    assert refitter.full_refits == 1
    assert refitter.scale("c") == 1.0
    for n in (8, 24, 48):
        assert refitter.model("c").time(n) == pytest.approx(truth.time(n), rel=0.05)


def test_full_refit_keeps_scaled_model_when_it_already_fits():
    """When uniform scaling explains the window, the refit must not churn."""
    refitter = DriftAwareRefitter(_BASE, rng=default_rng(2))
    for step, n in enumerate([8, 16, 32, 48, 8, 16, 32, 48]):
        refitter.observe(step, "c", n, 2.0 * _BASE["c"].time(n))
    scaled_before = refitter.model("c")
    refitter.maybe_full_refit("c")
    # Either outcome is consistent, but the resulting curve must match the
    # scaled truth — the guard exists to prevent a *worse* model landing.
    for n in (8, 24, 48):
        assert refitter.model("c").time(n) == pytest.approx(
            scaled_before.time(n), rel=0.1
        )


def test_validation_errors():
    with pytest.raises(ValueError, match="at least one base model"):
        DriftAwareRefitter({})
    with pytest.raises(ValueError, match="alpha"):
        RefitConfig(alpha=0.0)
    with pytest.raises(ValueError, match="stale_error"):
        RefitConfig(stale_error=-1.0)
    with pytest.raises(ValueError, match="window"):
        RefitConfig(window=1)
    with pytest.raises(ValueError, match="decay"):
        RefitConfig(decay=1.5)


def test_models_view_covers_every_component():
    refitter = DriftAwareRefitter(
        {"a": PerformanceModel(a=100.0), "b": PerformanceModel(a=200.0)}
    )
    assert set(refitter.models()) == {"a", "b"}
