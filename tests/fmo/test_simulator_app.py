"""Tests for the FMO simulator and the HSLB pipeline on FMO."""

import numpy as np
import pytest

from repro.core.hslb import HSLBOptimizer
from repro.core.objectives import Objective
from repro.core.spec import Allocation
from repro.fmo.app import FMOApplication
from repro.fmo.gddi import GroupSchedule
from repro.fmo.molecules import protein_like, water_cluster
from repro.fmo.schedulers import hslb_schedule, uniform_static_schedule
from repro.fmo.simulator import FMOSimulator
from repro.minlp.solution import Status
from repro.util.rng import default_rng


@pytest.fixture
def system():
    return protein_like(6, default_rng(2))


@pytest.fixture
def sim(system):
    return FMOSimulator(system)


def test_noise_validation(system):
    with pytest.raises(ValueError):
        FMOSimulator(system, noise=-0.1)


def test_fragment_seconds_jitter(sim, rng):
    a = sim.fragment_seconds(0, 4, rng)
    b = sim.fragment_seconds(0, 4, rng)
    assert a != b
    truth = sim.true_fragment_seconds(0, 4)
    assert abs(a / truth - 1.0) < 0.2


def test_zero_noise_deterministic(system):
    sim = FMOSimulator(system, noise=0.0)
    assert sim.fragment_seconds(0, 4, default_rng(1)) == sim.true_fragment_seconds(0, 4)


def test_execute_group_accounting(sim, system):
    sched = uniform_static_schedule(system, 12, 3)
    run = sim.execute(sched, default_rng(0))
    assert len(run.group_times) == 3
    assert run.makespan == max(run.group_times)
    assert set(run.fragment_times) == set(range(system.n_fragments))
    # Group time equals the sum of its fragments' times.
    for g in range(3):
        expected = sum(run.fragment_times[f] for f in sched.fragments_of(g))
        assert run.group_times[g] == pytest.approx(expected)
    assert run.load_imbalance >= 1.0


def test_execute_validates_schedule(sim, system):
    bad = GroupSchedule((4,), (0,) * (system.n_fragments - 1))
    with pytest.raises(ValueError):
        sim.execute(bad, default_rng(0))


def test_benchmark_suite_shape(sim, system, rng):
    suite = sim.benchmark([1, 2, 4, 8], rng)
    assert len(suite.components) == system.n_fragments
    for comp in suite.components:
        assert len(suite[comp]) == 4
    with pytest.raises(ValueError):
        sim.benchmark([0], rng)


# --- full pipeline ------------------------------------------------------------


def test_hslb_pipeline_on_fmo(system):
    rng = default_rng(8)
    app = FMOApplication(system)
    opt = HSLBOptimizer(app)
    result = opt.run([1, 2, 4, 8, 16, 32], 96, rng)
    assert result.solution.status is Status.OPTIMAL
    assert sum(result.allocation.nodes.values()) <= 96
    # The pipeline's fitted-model prediction should be close to reality.
    assert result.prediction_error < 0.15
    # Executed makespan should beat a uniform split.
    uni = app.simulator.execute(
        uniform_static_schedule(system, 96, system.n_fragments), default_rng(8)
    )
    assert result.actual_total < uni.makespan


def test_pipeline_matches_ground_truth_schedule(system):
    """Fits from clean-ish data should reproduce the ground-truth MINLP."""
    rng = default_rng(8)
    app = FMOApplication(system, noise=0.001)
    result = HSLBOptimizer(app).run([1, 2, 4, 8, 16, 32], 96, rng)
    truth_schedule, truth_sol = hslb_schedule(system, 96)
    assert result.predicted_total == pytest.approx(truth_sol.objective, rel=0.05)
    fitted_sizes = np.array(
        [result.allocation[f"frag{i}"] for i in range(system.n_fragments)]
    )
    truth_sizes = np.array(truth_schedule.group_sizes)
    # Allocations agree up to fit noise.
    assert np.abs(fitted_sizes - truth_sizes).max() <= np.maximum(2, 0.3 * truth_sizes).max()


def test_app_formulate_requires_capacity(system):
    app = FMOApplication(system)
    from repro.fmo.schedulers import fragment_models

    models = {
        f"frag{i}": m for i, m in fragment_models(system).items()
    }
    with pytest.raises(ValueError, match="cannot host"):
        app.formulate(models, system.n_fragments - 1)


def test_schedule_from_allocation(system):
    app = FMOApplication(system)
    alloc = Allocation({f"frag{i}": i + 1 for i in range(system.n_fragments)})
    sched = app.schedule_from_allocation(alloc)
    assert sched.group_sizes == tuple(range(1, system.n_fragments + 1))
    assert sched.assignment == tuple(range(system.n_fragments))


def test_max_min_objective_flags_nonconvex(system):
    app = FMOApplication(system, objective=Objective.MAX_MIN)
    assert app.requires_nonconvex_solver
    assert not FMOApplication(system).requires_nonconvex_solver


def test_execution_metadata(system):
    app = FMOApplication(system)
    alloc = Allocation({f"frag{i}": 4 for i in range(system.n_fragments)})
    res = app.execute(alloc, default_rng(0))
    assert res.metadata["group_sizes"] == (4,) * system.n_fragments
    assert res.metadata["load_imbalance"] >= 1.0
