"""Tests for GDDI schedules and the three schedulers."""

import numpy as np
import pytest

from repro.core.objectives import Objective
from repro.fmo.gddi import GroupSchedule, even_group_sizes
from repro.fmo.molecules import protein_like, water_cluster
from repro.fmo.schedulers import (
    fragment_models,
    greedy_dynamic_schedule,
    hslb_schedule,
    uniform_static_schedule,
)
from repro.fmo.simulator import FMOSimulator
from repro.util.rng import default_rng


def test_schedule_validation():
    with pytest.raises(ValueError, match="at least one group"):
        GroupSchedule((), ())
    with pytest.raises(ValueError, match="at least one node"):
        GroupSchedule((0,), (0,))
    with pytest.raises(ValueError, match="unknown groups"):
        GroupSchedule((4,), (1,))


def test_schedule_views():
    s = GroupSchedule((4, 8), (0, 1, 0))
    assert s.n_groups == 2
    assert s.total_nodes == 12
    assert s.fragments_of(0) == (0, 2)
    assert s.fragments_of(1) == (1,)


def test_validate_for_system(rng):
    sys_ = water_cluster(3, rng)
    s = GroupSchedule((4, 4), (0, 1))  # only 2 of 3 fragments assigned
    with pytest.raises(ValueError, match="assigns 2"):
        s.validate_for(sys_, 8)
    s2 = GroupSchedule((4, 4), (0, 0, 0))  # group 1 empty
    with pytest.raises(ValueError, match="no fragments"):
        s2.validate_for(sys_, 8)
    s3 = GroupSchedule((8, 8), (0, 1, 0))
    with pytest.raises(ValueError, match="machine"):
        s3.validate_for(sys_, 8)


def test_group_loads_and_imbalance():
    s = GroupSchedule((4, 4), (0, 1, 1))
    loads = s.group_loads({0: 10.0, 1: 3.0, 2: 4.0})
    assert loads == [10.0, 7.0]
    assert s.load_imbalance({0: 10.0, 1: 3.0, 2: 4.0}) == pytest.approx(10.0 / 8.5)


def test_even_group_sizes():
    assert even_group_sizes(10, 3) == (4, 3, 3)
    assert even_group_sizes(9, 3) == (3, 3, 3)
    with pytest.raises(ValueError):
        even_group_sizes(2, 3)


# --- schedulers -------------------------------------------------------------


def test_uniform_static_round_robin(rng):
    sys_ = water_cluster(7, rng)
    s = uniform_static_schedule(sys_, 64, 3)
    assert s.total_nodes == 64
    assert s.assignment == (0, 1, 2, 0, 1, 2, 0)


def test_uniform_caps_groups_at_fragments(rng):
    sys_ = water_cluster(2, rng)
    s = uniform_static_schedule(sys_, 64, 8)
    assert s.n_groups == 2


def test_greedy_dynamic_balances_known_loads(rng):
    sys_ = protein_like(10, rng)
    s = greedy_dynamic_schedule(sys_, 60, 3)
    sizes = s.group_sizes
    assert all(sz == 20 for sz in sizes)
    models = fragment_models(sys_)
    costs = {i: models[i].time(20) for i in range(10)}
    # LPT should be near-balanced: imbalance below uniform round-robin's.
    uni = uniform_static_schedule(sys_, 60, 3)
    assert s.load_imbalance(costs) <= uni.load_imbalance(costs) + 1e-9


def test_hslb_schedule_solves_to_optimality(rng):
    sys_ = protein_like(6, rng)
    schedule, sol = hslb_schedule(sys_, 64)
    assert schedule.total_nodes <= 64
    assert len(schedule.group_sizes) == 6
    # Bigger fragments get more nodes (monotone in workload).
    models = fragment_models(sys_)
    work = {i: models[i].time(1) for i in range(6)}
    biggest = max(work, key=work.get)
    smallest = min(work, key=work.get)
    assert schedule.group_sizes[biggest] >= schedule.group_sizes[smallest]


def test_hslb_needs_enough_nodes(rng):
    sys_ = water_cluster(10, rng)
    with pytest.raises(ValueError, match="cannot host"):
        hslb_schedule(sys_, 5)


def test_hslb_beats_baselines_on_diverse_tasks():
    """The SC 2012 headline shape: HSLB < idealized DLB < uniform static
    for few large tasks of diverse size."""
    rng = default_rng(3)
    sys_ = protein_like(12, rng)
    sim = FMOSimulator(sys_)
    N = 256
    hs, _ = hslb_schedule(sys_, N)
    runs = {
        "hslb": sim.execute(hs, default_rng(9)).makespan,
        "uniform": sim.execute(
            uniform_static_schedule(sys_, N, 12), default_rng(9)
        ).makespan,
        "dlb": min(
            sim.execute(
                greedy_dynamic_schedule(sys_, N, g), default_rng(9)
            ).makespan
            for g in (2, 3, 4, 6, 12)
        ),
    }
    assert runs["hslb"] < runs["dlb"] * 0.95
    assert runs["hslb"] < runs["uniform"] * 0.6


def test_hslb_near_tie_on_homogeneous_tasks():
    """On uniform tasks (water cluster) DLB/uniform are fine and HSLB's
    advantage shrinks — the paper's scoping claim in reverse."""
    rng = default_rng(4)
    sys_ = water_cluster(16, rng)
    sim = FMOSimulator(sys_)
    N = 64
    hs, _ = hslb_schedule(sys_, N)
    h = sim.execute(hs, default_rng(1)).makespan
    u = sim.execute(uniform_static_schedule(sys_, N, 16), default_rng(1)).makespan
    assert h <= u * 1.05  # never worse
    assert h >= u * 0.5   # ...but no dramatic win on uniform tasks


def test_hslb_min_sum_objective_runs(rng):
    sys_ = protein_like(5, rng)
    schedule, sol = hslb_schedule(sys_, 32, objective=Objective.MIN_SUM)
    assert schedule.total_nodes <= 32
    assert sol.status.is_ok
