"""Tests for synthetic fragmented systems and SCF cost models."""

import numpy as np
import pytest

from repro.fmo.molecules import (
    DIMER_CUTOFF,
    Fragment,
    FragmentedSystem,
    protein_like,
    water_cluster,
)
from repro.fmo.timing import (
    MachineCalibration,
    dimer_model,
    fragment_workload,
    monomer_model,
    total_fragment_model,
)
from repro.util.rng import default_rng


def test_fragment_validation():
    with pytest.raises(ValueError):
        Fragment(0, 0, (0, 0, 0))
    f = Fragment(0, 3, (0, 0, 0))
    assert f.n_basis > 3  # several basis functions per atom


def test_system_validation():
    with pytest.raises(ValueError, match="no fragments"):
        FragmentedSystem("x", ())
    frags = (Fragment(0, 3, (0, 0, 0)), Fragment(2, 3, (1, 0, 0)))
    with pytest.raises(ValueError, match="indices"):
        FragmentedSystem("x", frags)
    with pytest.raises(ValueError, match="scc"):
        FragmentedSystem("x", (Fragment(0, 3, (0, 0, 0)),), scc_iterations=0)


def test_water_cluster_properties(rng):
    sys_ = water_cluster(20, rng)
    assert sys_.n_fragments == 20
    assert all(f.n_atoms == 3 for f in sys_.fragments)
    assert sys_.size_diversity() == pytest.approx(0.0)
    assert sys_.n_atoms == 60


def test_protein_like_diversity(rng):
    sys_ = protein_like(16, rng)
    sizes = [f.n_atoms for f in sys_.fragments]
    assert min(sizes) >= 8 and max(sizes) <= 60
    assert sys_.size_diversity() > 0.2  # genuinely diverse tasks


def test_protein_like_validation(rng):
    with pytest.raises(ValueError):
        protein_like(0, rng)
    with pytest.raises(ValueError):
        protein_like(4, rng, min_atoms=10, max_atoms=5)


def test_dimer_pairs_respect_cutoff():
    frags = (
        Fragment(0, 3, (0.0, 0.0, 0.0)),
        Fragment(1, 3, (1.0, 0.0, 0.0)),       # close to 0
        Fragment(2, 3, (100.0, 0.0, 0.0)),     # far from both
    )
    sys_ = FragmentedSystem("t", frags)
    pairs = sys_.dimer_pairs()
    assert (0, 1) in pairs
    assert all(2 not in p for p in pairs)
    assert sys_.dimer_pairs(cutoff=1000.0) == ((0, 1), (0, 2), (1, 2))


def test_water_cluster_reproducible():
    a = water_cluster(10, default_rng(5))
    b = water_cluster(10, default_rng(5))
    assert a.fragments == b.fragments


# --- timing models -----------------------------------------------------------


def test_monomer_cost_scales_cubically():
    small = monomer_model(Fragment(0, 5, (0, 0, 0)))
    big = monomer_model(Fragment(1, 50, (0, 0, 0)))
    # a ~ basis^3: 10x atoms -> ~1000x scalable work.
    assert big.a / small.a == pytest.approx(1000.0, rel=0.05)


def test_dimer_cheaper_than_double_monomer():
    f1, f2 = Fragment(0, 20, (0, 0, 0)), Fragment(1, 20, (1, 0, 0))
    calib = MachineCalibration()
    d = dimer_model(f1, f2, calib)
    m = monomer_model(f1, calib)
    # Dimer has 2x the basis (8x the cubic work) but a convergence discount.
    assert d.a == pytest.approx(8 * m.a * calib.dimer_factor, rel=1e-9)


def test_calibration_validation():
    with pytest.raises(ValueError):
        MachineCalibration(kappa_fock=0.0)
    with pytest.raises(ValueError):
        MachineCalibration(dimer_factor=-1.0)


def test_fragment_workload_accounts_dimers(rng):
    sys_ = water_cluster(6, rng)
    load = fragment_workload(sys_)
    assert set(load) == set(range(6))
    # Every fragment must at least carry its monomer SCC cost.
    mono = sys_.scc_iterations * monomer_model(sys_.fragments[0]).time(1)
    assert all(v >= mono - 1e-12 for v in load.values())


def test_total_fragment_model_consistent_with_workload(rng):
    sys_ = protein_like(8, rng)
    load = fragment_workload(sys_)
    for f in sys_.fragments:
        model = total_fragment_model(sys_, f)
        assert model.time(1) == pytest.approx(load[f.index], rel=1e-9)
        # More nodes, less time (monotone in the scalable regime).
        assert model.time(8) < model.time(1)


def test_total_fragment_model_is_convex(rng):
    sys_ = protein_like(5, rng)
    for f in sys_.fragments:
        assert total_fragment_model(sys_, f).is_convex
