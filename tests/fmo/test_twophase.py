"""Tests for the two-phase (monomer SCC + dimer) FMO model."""

import pytest

from repro.fmo.gddi import GroupSchedule
from repro.fmo.molecules import protein_like, water_cluster
from repro.fmo.twophase import (
    TwoPhaseSchedule,
    TwoPhaseSimulator,
    hslb_two_phase_schedule,
    uniform_two_phase_schedule,
)
from repro.util.rng import default_rng


@pytest.fixture
def system():
    return protein_like(6, default_rng(2))


@pytest.fixture
def sim(system):
    return TwoPhaseSimulator(system, noise=0.0)


def test_schedule_validation(system, sim):
    mono = GroupSchedule((4,) * 6, tuple(range(6)))
    with pytest.raises(ValueError, match="length mismatch"):
        TwoPhaseSchedule(mono, (0,), sim.dimer_pairs)
    if sim.dimer_pairs:
        with pytest.raises(ValueError, match="unknown groups"):
            TwoPhaseSchedule(
                mono, (99,) * len(sim.dimer_pairs), sim.dimer_pairs
            )


def test_total_is_sum_of_phases(system, sim):
    sched = uniform_two_phase_schedule(system, 24, 6)
    result = sim.execute(sched, default_rng(0))
    assert result.total == pytest.approx(result.monomer_time + result.dimer_time)
    assert result.monomer_time > 0
    assert result.dimer_time >= 0


def test_monomer_phase_scales_with_scc_iterations(system):
    sim = TwoPhaseSimulator(system, noise=0.0)
    sched = uniform_two_phase_schedule(system, 24, 6)
    result = sim.execute(sched, default_rng(0))
    # Noise-free: monomer phase = iterations x per-iteration makespan.
    per_iter = result.monomer_time / system.scc_iterations
    assert per_iter > 0
    assert result.monomer_time == pytest.approx(
        system.scc_iterations * per_iter
    )


def test_mismatched_dimer_list_rejected(system, sim):
    other = protein_like(6, default_rng(9))
    other_sim = TwoPhaseSimulator(other, noise=0.0)
    sched = uniform_two_phase_schedule(other, 24, 6)
    if sched.dimer_pairs != sim.dimer_pairs:
        with pytest.raises(ValueError, match="dimer list"):
            sim.execute(sched, default_rng(0))


def test_hslb_two_phase_beats_uniform(system):
    sim = TwoPhaseSimulator(system, noise=0.0)
    N = 96
    hs = hslb_two_phase_schedule(system, N)
    uni = uniform_two_phase_schedule(system, N, system.n_fragments)
    t_hs = sim.execute(hs, default_rng(1)).total
    t_uni = sim.execute(uni, default_rng(1)).total
    assert t_hs < t_uni
    # The barrier amplification means the win exceeds the single-phase one
    # proportionally — at least a solid margin on diverse fragments.
    assert t_hs < 0.8 * t_uni


def test_hslb_two_phase_capacity_check(system):
    with pytest.raises(ValueError, match="cannot host"):
        hslb_two_phase_schedule(system, system.n_fragments - 1)


def test_dimers_follow_lpt_not_all_one_group(system):
    hs = hslb_two_phase_schedule(system, 96)
    if len(hs.dimer_pairs) >= 3:
        assert len(set(hs.dimer_assignment)) > 1


def test_water_cluster_two_phase_runs():
    system = water_cluster(8, default_rng(4))
    sim = TwoPhaseSimulator(system, noise=0.02)
    sched = uniform_two_phase_schedule(system, 16, 8)
    result = sim.execute(sched, default_rng(5))
    assert result.total > 0
    assert result.label.startswith("uniform-two-phase")


def test_noise_reproducibility(system):
    sim = TwoPhaseSimulator(system, noise=0.05)
    sched = uniform_two_phase_schedule(system, 24, 6)
    a = sim.execute(sched, default_rng(7))
    b = sim.execute(sched, default_rng(7))
    assert a.total == b.total
