"""Tests for mid-run group-loss recovery."""

import pytest

from repro.fmo.gddi import GroupSchedule, even_group_sizes
from repro.fmo.molecules import water_cluster
from repro.fmo.recovery import STRATEGIES, degradation_curve, run_with_crash
from repro.fmo.simulator import FMOSimulator
from repro.util.rng import default_rng


@pytest.fixture
def sim():
    return FMOSimulator(water_cluster(12, default_rng(4)), noise=0.0)


@pytest.fixture
def schedule():
    return GroupSchedule(
        group_sizes=even_group_sizes(24, 4),
        assignment=tuple(i % 4 for i in range(12)),
        label="even-4",
    )


def test_validation(sim, schedule):
    with pytest.raises(ValueError, match="unknown recovery strategy"):
        run_with_crash(sim, schedule, crash_group=0, strategy="pray")
    with pytest.raises(ValueError, match="out of range"):
        run_with_crash(sim, schedule, crash_group=7)
    with pytest.raises(ValueError, match="crash_fraction"):
        run_with_crash(sim, schedule, crash_group=0, crash_fraction=0.0)
    solo = GroupSchedule(group_sizes=(8,), assignment=(0,) * 12)
    with pytest.raises(ValueError, match="whole machine"):
        run_with_crash(sim, solo, crash_group=0)


def test_fault_free_baseline_matches_execute(sim, schedule):
    """The recovery simulation's fault-free makespan is exactly what a plain
    execute with the same generator would report."""
    out = run_with_crash(sim, schedule, crash_group=0, rng=default_rng(9))
    run = sim.execute(schedule, default_rng(9))
    assert out.fault_free_makespan == pytest.approx(run.makespan)
    assert out.fragment_times == pytest.approx(run.fragment_times)


def test_crash_accounting(sim, schedule):
    out = run_with_crash(
        sim, schedule, crash_group=1, crash_fraction=0.5, rng=default_rng(9)
    )
    dead_queue = set(schedule.fragments_of(1))
    assert set(out.lost_fragments) | set(out.completed_before_crash) == dead_queue
    assert set(out.lost_fragments) & set(out.completed_before_crash) == set()
    assert out.crash_time == pytest.approx(0.5 * out.fault_free_makespan)
    # Losing work can only lengthen the run.
    assert out.makespan >= out.fault_free_makespan
    assert out.degradation >= 0.0


def test_strategy_ordering(sim, schedule):
    """none is never better than replan; the perfect-knowledge dynamic
    baseline is never worse than naive failover."""
    outs = {
        s: run_with_crash(
            sim, schedule, crash_group=1, crash_fraction=0.5,
            strategy=s, rng=default_rng(9),
        )
        for s in STRATEGIES
    }
    assert outs["replan"].makespan <= outs["none"].makespan + 1e-12
    assert outs["dynamic"].makespan <= outs["none"].makespan + 1e-12
    # All three agree on what was lost — the strategies differ only in
    # where the pending work goes.
    lost = {s: o.lost_fragments for s, o in outs.items()}
    assert lost["replan"] == lost["dynamic"] == lost["none"]


def test_none_strategy_serializes_on_first_survivor(sim, schedule):
    out = run_with_crash(
        sim, schedule, crash_group=0, crash_fraction=0.3,
        strategy="none", rng=default_rng(9),
    )
    assert out.lost_fragments  # an early crash must lose something
    # Group 1 is the first survivor: it absorbs every re-run serially.
    rerun_total = sum(
        sim.true_fragment_seconds(f, schedule.group_sizes[1])
        for f in out.lost_fragments
    )
    base = max(
        sum(out.fragment_times[f] for f in schedule.fragments_of(1)),
        out.crash_time,
    )
    assert out.group_finish_times[1] == pytest.approx(base + rerun_total)


def test_same_seed_same_outcome(sim, schedule):
    a = run_with_crash(sim, schedule, crash_group=2, rng=default_rng(21))
    b = run_with_crash(sim, schedule, crash_group=2, rng=default_rng(21))
    assert a == b


def test_late_crash_with_nothing_pending_is_free(sim):
    """If the dead group finished its queue before the crash, the run is
    unaffected."""
    # Group 0 gets the single smallest fragment; a late crash finds it done.
    times = [sim.true_fragment_seconds(f, 6) for f in range(12)]
    smallest = times.index(min(times))
    assignment = tuple(0 if f == smallest else 1 + f % 3 for f in range(12))
    schedule = GroupSchedule(group_sizes=even_group_sizes(24, 4), assignment=assignment)
    out = run_with_crash(
        sim, schedule, crash_group=0, crash_fraction=0.95, rng=default_rng(9)
    )
    assert out.lost_fragments == ()
    assert out.makespan == pytest.approx(out.fault_free_makespan)
    assert out.degradation == pytest.approx(0.0)


def test_degradation_curve_shapes(sim, schedule):
    curves = degradation_curve(
        sim, schedule, crash_group=0, fractions=(0.2, 0.8), seed=5
    )
    assert set(curves) == set(STRATEGIES)
    for outcomes in curves.values():
        assert [o.crash_time / o.fault_free_makespan for o in outcomes] == (
            pytest.approx([0.2, 0.8])
        )
    # A later crash loses no more work than an earlier one (same run).
    for s in STRATEGIES:
        early, late = curves[s]
        assert len(late.lost_fragments) <= len(early.lost_fragments)


def test_noise_draws_rerun_jitter():
    """With noise on, re-run durations are jittered but still deterministic."""
    noisy = FMOSimulator(water_cluster(12, default_rng(4)), noise=0.05)
    schedule = GroupSchedule(
        group_sizes=even_group_sizes(24, 4),
        assignment=tuple(i % 4 for i in range(12)),
    )
    a = run_with_crash(noisy, schedule, crash_group=1, rng=default_rng(3))
    b = run_with_crash(noisy, schedule, crash_group=1, rng=default_rng(3))
    assert a.makespan == b.makespan
    assert a.lost_fragments == b.lost_fragments
