"""Tests for the ASCII figure renderer."""

import pytest

from repro.util.ascii_plot import ascii_plot


def test_single_series_renders():
    out = ascii_plot({"s": ([1, 2, 3], [10, 5, 2])}, width=20, height=6)
    lines = out.splitlines()
    assert any("o" in l for l in lines)
    assert "legend: o=s" in out
    assert "y: 2 .. 10" in out
    assert "x: 1 .. 3" in out


def test_multiple_series_distinct_markers():
    out = ascii_plot(
        {"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])}, width=20, height=6
    )
    assert "o=a" in out and "x=b" in out
    assert "o" in out and "x" in out


def test_log_axes():
    out = ascii_plot(
        {"s": ([1, 10, 100, 1000], [1000, 100, 10, 1])},
        log_x=True,
        log_y=True,
        width=30,
        height=8,
    )
    assert "(log)" in out
    # Perfect power law renders as a diagonal: marker columns all distinct.
    rows = [l for l in out.splitlines() if l.startswith("|")]
    cols = [r.index("o") for r in rows if "o" in r]
    assert len(set(cols)) == len(cols)


def test_log_axis_rejects_nonpositive():
    with pytest.raises(ValueError, match="positive"):
        ascii_plot({"s": ([0, 1], [1, 2])}, log_x=True)


def test_validation():
    with pytest.raises(ValueError, match="no series"):
        ascii_plot({})
    with pytest.raises(ValueError, match="mismatch"):
        ascii_plot({"s": ([1, 2], [1])})
    with pytest.raises(ValueError, match="empty"):
        ascii_plot({"s": ([], [])})
    with pytest.raises(ValueError, match="too small"):
        ascii_plot({"s": ([1], [1])}, width=5, height=2)


def test_constant_series_no_crash():
    out = ascii_plot({"s": ([1, 2, 3], [5, 5, 5])}, width=20, height=6)
    assert "y: 5 .. 5" in out


def test_title_and_labels():
    out = ascii_plot(
        {"s": ([1, 2], [1, 2])},
        title="My Figure",
        x_label="nodes",
        y_label="seconds",
        width=20,
        height=6,
    )
    assert out.splitlines()[0] == "My Figure"
    assert "nodes:" in out and "seconds:" in out
