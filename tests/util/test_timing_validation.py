import pytest

from repro.util.timing import Timer
from repro.util.validation import (
    as_sorted_unique,
    check_finite,
    check_in_range,
    check_integerish,
    check_positive,
)


def test_timer_context_manager():
    with Timer() as t:
        pass
    assert t.elapsed >= 0.0
    assert not t.running


def test_timer_accumulates_across_phases():
    t = Timer()
    t.start()
    first = t.stop()
    t.start()
    second = t.stop()
    assert second >= first


def test_timer_stop_without_start():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_check_finite():
    assert check_finite("x", 3.0) == 3.0
    with pytest.raises(ValueError):
        check_finite("x", float("nan"))
    with pytest.raises(ValueError):
        check_finite("x", float("inf"))


def test_check_positive_strict_and_nonstrict():
    assert check_positive("x", 1e-9) == 1e-9
    with pytest.raises(ValueError):
        check_positive("x", 0.0)
    assert check_positive("x", 0.0, strict=False) == 0.0
    with pytest.raises(ValueError):
        check_positive("x", -1.0, strict=False)


def test_check_in_range():
    assert check_in_range("x", 5, 0, 10) == 5.0
    with pytest.raises(ValueError):
        check_in_range("x", 11, 0, 10)


def test_check_integerish():
    assert check_integerish("n", 4.0000001, tol=1e-5) == 4
    with pytest.raises(ValueError):
        check_integerish("n", 4.01)


def test_as_sorted_unique():
    out = as_sorted_unique([3, 1, 2, 2, 3])
    assert list(out) == [1.0, 2.0, 3.0]
    with pytest.raises(ValueError):
        as_sorted_unique([])
