import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, default_rng, spawn_rng


def test_default_seed_reproducible():
    a = default_rng().random(5)
    b = default_rng().random(5)
    assert np.array_equal(a, b)


def test_explicit_seed_differs_from_default():
    a = default_rng().random(5)
    b = default_rng(DEFAULT_SEED + 1).random(5)
    assert not np.array_equal(a, b)


def test_spawn_independent_streams():
    parent = default_rng(7)
    children = spawn_rng(parent, 3)
    draws = [c.random(4) for c in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_deterministic():
    a = [g.random() for g in spawn_rng(default_rng(9), 2)]
    b = [g.random() for g in spawn_rng(default_rng(9), 2)]
    assert a == b


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        spawn_rng(default_rng(), -1)


def test_spawn_zero_ok():
    assert spawn_rng(default_rng(), 0) == []
