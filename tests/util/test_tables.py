import pytest

from repro.util.tables import format_table


def test_basic_alignment():
    out = format_table(["name", "value"], [["x", 1.5], ["longer", 22.125]])
    lines = out.splitlines()
    assert len(lines) == 4
    header, sep, row1, row2 = lines
    assert "name" in header and "value" in header
    assert set(sep) <= {"-", " "}
    assert row1.endswith("1.500")
    assert row2.endswith("22.125")


def test_title_prepended():
    out = format_table(["a"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_float_format_override():
    out = format_table(["a"], [[3.14159]], float_fmt=".1f")
    assert "3.1" in out and "3.14" not in out


def test_int_not_float_formatted():
    out = format_table(["a"], [[7]])
    assert out.splitlines()[-1].strip() == "7"


def test_ragged_row_rejected():
    with pytest.raises(ValueError, match="row 0"):
        format_table(["a", "b"], [[1]])


def test_empty_rows_ok():
    out = format_table(["a", "b"], [])
    assert len(out.splitlines()) == 2


def test_bool_rendered_as_str_not_float():
    out = format_table(["flag"], [[True]])
    assert "True" in out
