"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out
    assert "table3-eighth-32768-freeocn" in out
    assert "predict-job-size" in out


def test_experiment_unknown_name(capsys):
    assert main(["experiment", "table9"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_fmo_command(capsys):
    assert main(["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64"]) == 0
    out = capsys.readouterr().out
    assert "hslb-min-max" in out
    assert "uniform" in out
    assert "HSLB group sizes" in out


def test_fmo_water_variant(capsys):
    assert main(
        ["--seed", "2", "fmo", "--system", "water", "--fragments", "5", "--nodes", "20"]
    ) == 0
    assert "(H2O)_5" in capsys.readouterr().out


def test_optimize_command(capsys):
    code = main(
        [
            "--seed", "3",
            "optimize", "--resolution", "1deg", "--nodes", "64",
            "--benchmarks", "16", "32", "64", "256",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "TOTAL" in out
    assert "solver: optimal" in out


def test_optimize_compare_manual(capsys):
    code = main(
        [
            "--seed", "3",
            "optimize", "--resolution", "1deg", "--nodes", "64",
            "--benchmarks", "16", "32", "64", "256",
            "--compare-manual",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "manual" in out
    assert "HSLB improvement over manual" in out


def test_optimize_free_ocean_requires_eighth(capsys):
    assert main(["optimize", "--resolution", "1deg", "--nodes", "64", "--free-ocean"]) == 2
    assert "1/8-degree" in capsys.readouterr().err


def test_optimize_layout3(capsys):
    code = main(
        [
            "--seed", "4",
            "optimize", "--resolution", "1deg", "--nodes", "64",
            "--layout", "3",
            "--benchmarks", "16", "32", "64", "256",
        ]
    )
    assert code == 0
    assert "layout 3" in capsys.readouterr().out


def test_experiment_runs_fmo_pipeline(capsys):
    assert main(["experiment", "fmo-pipeline"]) == 0
    assert "predicted makespan" in capsys.readouterr().out


def test_optimize_save_and_load_benchmarks(tmp_path, capsys):
    bench_file = str(tmp_path / "campaign.json")
    args = [
        "--seed", "3",
        "optimize", "--resolution", "1deg", "--nodes", "64",
        "--benchmarks", "16", "32", "64", "256",
    ]
    assert main(args + ["--save-benchmarks", bench_file]) == 0
    first = capsys.readouterr()
    assert "benchmark campaign saved" in first.err
    assert "TOTAL" in first.out
    # Second run reuses the campaign: gather skipped, same fits, same table.
    assert main(args + ["--load-benchmarks", bench_file]) == 0
    second = capsys.readouterr().out
    assert "TOTAL" in second


def test_optimize_auto_campaign(capsys):
    code = main(
        ["--seed", "6", "optimize", "--resolution", "1deg", "--nodes", "128",
         "--auto-campaign"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "planned gather campaign:" in captured.err
    assert "TOTAL" in captured.out


def test_export_ampl_to_stdout(capsys):
    assert main(["--seed", "5", "export", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "minimize objective:" in out
    assert "var n_atm integer" in out
    assert "suffix sosno" in out


def test_export_ampl_to_file(tmp_path, capsys):
    target = str(tmp_path / "layout1.mod")
    assert main(["--seed", "5", "export", "--nodes", "128", "-o", target]) == 0
    assert "written to" in capsys.readouterr().out
    text = open(target).read()
    assert "subject to" in text


def test_entrypoint_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_optimize_with_fault_flags(capsys):
    code = main(
        [
            "--seed", "3",
            "optimize", "--resolution", "1deg", "--nodes", "64",
            "--benchmarks", "16", "32", "64", "256",
            "--fail-rate", "0.1", "--straggler-rate", "0.05",
            "--crash-component", "ocn",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    out = captured.out
    # The plan is echoed up front so the run is reproducible from the log.
    assert "fault plan: FaultPlan(seed=0, fail=10%, straggler=5%" in captured.err
    assert "crash=ocn@50%" in captured.err
    assert "TOTAL" in out  # the pipeline still completed
    assert "recovery: lost" in out and "'ocn'" in out
    assert "solver: oa" in out or "solver: nlpbb" in out or "solver: greedy" in out


def test_optimize_without_fault_flags_has_no_plan_header(capsys):
    assert main(
        ["--seed", "3", "optimize", "--resolution", "1deg", "--nodes", "64",
         "--benchmarks", "16", "32", "64", "256"]
    ) == 0
    assert "fault plan:" not in capsys.readouterr().out


def test_fmo_with_crash_group(capsys):
    code = main(
        ["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64",
         "--crash-group", "1"]
    )
    assert code == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "fault plan:" in captured.err
    assert "group 1 lost 50% into the run" in out
    # Strategy comparison table lists all three recovery strategies.
    for strategy in ("replan", "dynamic", "none"):
        assert strategy in out
    assert "vs fault-free" in out


def test_fmo_crash_group_out_of_range(capsys):
    code = main(
        ["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64",
         "--crash-group", "9"]
    )
    assert code == 2
    assert "--crash-group must be in" in capsys.readouterr().err


def test_fmo_fault_seed_changes_plan_echo(capsys):
    assert main(
        ["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64",
         "--fail-rate", "0.2", "--fault-seed", "42"]
    ) == 0
    assert "fault plan: FaultPlan(seed=42, fail=20%" in capsys.readouterr().err


def test_fault_rate_out_of_range_is_a_clean_error(capsys):
    code = main(
        ["--seed", "3", "optimize", "--resolution", "1deg", "--nodes", "64",
         "--benchmarks", "16", "32", "64", "--fail-rate", "1.5"]
    )
    assert code == 2
    assert "fail_rate must be in [0, 1)" in capsys.readouterr().err


def test_fmo_crash_fraction_out_of_range_is_a_clean_error(capsys):
    code = main(
        ["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64",
         "--crash-group", "0", "--crash-fraction", "2.0"]
    )
    assert code == 2
    assert "crash_fraction" in capsys.readouterr().err


def test_optimize_json_report(capsys):
    code = main(
        [
            "--seed", "3",
            "optimize", "--resolution", "1deg", "--nodes", "64",
            "--benchmarks", "16", "32", "64", "256",
            "--json",
        ]
    )
    assert code == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["config"] == "1deg" and doc["nodes"] == 64
    assert sum(doc["allocation"].values()) > 0
    assert doc["solver"]["status"] == "optimal"
    assert doc["predicted_total"] > 0


def test_optimize_json_matches_table_run(capsys):
    args = [
        "--seed", "3",
        "optimize", "--resolution", "1deg", "--nodes", "64",
        "--benchmarks", "16", "32", "64", "256",
    ]
    assert main(args) == 0
    table = capsys.readouterr().out
    assert main(args + ["--json"]) == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    # Same pipeline underneath: every allocated node count in the JSON
    # report appears in the rendered table.
    for count in doc["allocation"].values():
        assert str(count) in table


def test_fmo_json_report(capsys):
    code = main(
        ["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64", "--json"]
    )
    assert code == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    labels = [row["label"] for row in doc["schedulers"]]
    assert "hslb-min-max" in labels
    assert doc["hslb"]["predicted"] > 0
    assert len(doc["hslb"]["group_sizes"]) >= 1


def test_fmo_json_with_faults_keeps_stdout_pure(capsys):
    code = main(
        ["--seed", "1", "fmo", "--fragments", "6", "--nodes", "64",
         "--fail-rate", "0.2", "--json"]
    )
    assert code == 0
    captured = capsys.readouterr()
    import json

    doc = json.loads(captured.out)  # stdout must be exactly one JSON doc
    assert "fault_plan" in doc
    assert "fault plan:" in captured.err


def _service_request_payload(total_nodes=64):
    return {
        "components": {
            "atm": {"a": 1200.0, "b": 0.5, "c": 1.1, "d": 2.0},
            "ocn": {"a": 800.0, "b": 0.3, "c": 1.2, "d": 1.0},
        },
        "total_nodes": total_nodes,
    }


def test_batch_command(tmp_path, capsys):
    import json

    path = tmp_path / "requests.json"
    path.write_text(
        json.dumps(
            [
                _service_request_payload(64),
                _service_request_payload(64),
                _service_request_payload(96),
            ]
        )
    )
    assert main(["batch", str(path), "--metrics"]) == 0
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in captured.out.splitlines()]
    responses, metrics = lines[:-1], lines[-1]["metrics"]
    assert len(responses) == 3
    assert responses[0]["allocation"] == responses[1]["allocation"]
    assert responses[1]["cached"] is True
    assert metrics["cache_hits"] == 1
    assert metrics["batch_deduped"] == 1
    assert "allocation service" in captured.err


def test_batch_missing_file_is_a_clean_error(capsys):
    assert main(["batch", "/nonexistent/requests.json"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_batch_bad_request_is_a_clean_error(tmp_path, capsys):
    import json

    path = tmp_path / "requests.json"
    path.write_text(json.dumps([{"total_nodes": 8}]))
    assert main(["batch", str(path)]) == 2
    assert "components" in capsys.readouterr().err


def test_bad_chaos_rate_is_a_clean_error(capsys):
    assert main(["chaos", "--chaos-crash-rate", "1.5"]) == 2
    assert "crash_rate" in capsys.readouterr().err
    assert main(["serve", "--chaos-hang-rate", "-0.1"]) == 2
    assert "hang_rate" in capsys.readouterr().err


def test_serve_command(monkeypatch, capsys):
    import io
    import json
    import sys as _sys

    payload = json.dumps(_service_request_payload(64))
    monkeypatch.setattr(
        _sys, "stdin", io.StringIO(payload + "\n" + payload + "\n")
    )
    assert main(["serve"]) == 0
    captured = capsys.readouterr()
    replies = [json.loads(line) for line in captured.out.splitlines()]
    assert replies[0]["cached"] is False and replies[1]["cached"] is True
    assert "served 2 request(s)" in captured.err


def test_serve_async_command(monkeypatch, capsys):
    import io
    import json
    import sys as _sys

    first = {**_service_request_payload(64), "id": "r1"}
    second = {**_service_request_payload(64), "id": "r2"}
    monkeypatch.setattr(
        _sys,
        "stdin",
        io.StringIO(json.dumps(first) + "\n" + json.dumps(second) + "\n"),
    )
    assert main(
        ["serve", "--async", "--shards", "2", "--worker-mode", "inline"]
    ) == 0
    captured = capsys.readouterr()
    replies = [json.loads(line) for line in captured.out.splitlines()]
    by_id = {r["id"]: r for r in replies}
    assert set(by_id) == {"r1", "r2"}
    assert by_id["r1"]["allocation"] == by_id["r2"]["allocation"]
    assert by_id["r1"]["shard"] == by_id["r2"]["shard"]
    assert "served 2 request(s)" in captured.err
    snapshot = json.loads(captured.err[captured.err.index("{"):])
    assert snapshot["shards"] == 2
    assert snapshot["served"] == 2


def test_serve_async_rejects_bad_shard_count(capsys):
    assert main(["serve", "--async", "--shards", "0"]) == 2
    assert "shard" in capsys.readouterr().err


def test_dynlb_command_table(capsys):
    code = main(
        [
            "--seed", "5",
            "dynlb", "--nodes", "64", "--steps", "16", "--interval", "4",
            "--strategies", "static,diffusion,sweep",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cesm-1deg" in out
    assert "vs static" in out
    for strategy in ("static", "diffusion", "sweep"):
        assert strategy in out


def test_dynlb_json_report(capsys):
    import json

    code = main(
        [
            "--seed", "5",
            "dynlb", "--scenario", "fmo", "--fragments", "4", "--nodes", "32",
            "--steps", "12", "--interval", "4",
            "--strategies", "static,sweep", "--json",
        ]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["strategies"]) == {"static", "sweep"}
    assert doc["strategies"]["sweep"]["steps"] == 12
    assert "vs_static_pct" in doc
    assert doc["vs_static_pct"]["static"] == 0.0


def test_dynlb_crash_run_reports_recovery(capsys):
    code = main(
        [
            "--seed", "5",
            "dynlb", "--nodes", "64", "--steps", "16", "--interval", "4",
            "--strategies", "static,diffusion", "--crash-step", "7",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "crash:" in out
    assert "re-planned on the survivors" in out


def test_dynlb_unknown_strategy_is_a_clean_error(capsys):
    assert main(["dynlb", "--strategies", "static,magic"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_dynlb_determinism_across_runs(capsys):
    argv = [
        "--seed", "9",
        "dynlb", "--nodes", "48", "--steps", "12", "--interval", "4",
        "--strategies", "static,sweep", "--json",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def _trace_dump(tmp_path):
    """A two-request JSONL trace dump; returns (path, first trace_id)."""
    from repro.obs.trace import get_tracer, span

    tracer = get_tracer()
    tracer.reset()
    tracer.enable()
    try:
        with span("tier.submit"):
            with span("shard.solve"):
                pass
        with span("other.request"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        trace_id = tracer.roots[0].trace_id
    finally:
        tracer.disable()
        tracer.reset()
    return path, trace_id


def test_trace_by_id_renders_one_tree(tmp_path, capsys):
    path, trace_id = _trace_dump(tmp_path)
    assert main(["trace", "--id", trace_id, "--input", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id} (2 spans)" in out
    assert "tier.submit" in out and "shard.solve" in out
    assert "other.request" not in out  # foreign trees are filtered out


def test_trace_by_id_requires_input(capsys):
    assert main(["trace", "--id", "abc"]) == 2
    assert "--input" in capsys.readouterr().err


def test_trace_by_unknown_id_is_a_clean_error(tmp_path, capsys):
    path, _ = _trace_dump(tmp_path)
    assert main(["trace", "--id", "no-such", "--input", str(path)]) == 1
    assert "no spans" in capsys.readouterr().err


def test_top_paints_from_a_file(tmp_path, capsys):
    exposition = tmp_path / "metrics.txt"
    exposition.write_text(
        "# TYPE tier_requests_total counter\ntier_requests_total 5\n"
    )
    code = main(["top", "--input", str(exposition), "--iterations", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hslb top" in out
    assert "tier_requests_total" in out


def test_top_requires_a_source(capsys):
    assert main(["top"]) == 2
    assert "--url or --input" in capsys.readouterr().err


def test_top_rejects_non_prometheus_input_cleanly(tmp_path, capsys):
    """Feeding a trace JSONL (or any non-exposition file) is user error:
    one line on stderr and exit 2, never a traceback."""
    path, _ = _trace_dump(tmp_path)
    assert main(["top", "--input", str(path), "--iterations", "1"]) == 2
    assert "not Prometheus exposition text" in capsys.readouterr().err
