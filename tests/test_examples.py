"""Smoke tests: every shipped example must run end to end.

Examples are documentation that executes; these tests keep them honest.
The heavyweight high-resolution example runs with a reduced machine size.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def _run(path: str, argv: list[str], monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/quickstart.py", ["64"], monkeypatch, capsys)
    assert "manual vs HSLB" in out
    assert "improvement:" in out
    assert "MINLP solve:" in out


def test_fmo_fragments(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/fmo_fragments.py", ["8", "96"], monkeypatch, capsys)
    assert "hslb-min-max" in out
    assert "(H2O)_8" in out  # the homogeneous contrast case runs too


def test_custom_application(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/custom_application.py", [], monkeypatch, capsys)
    assert "analytics pipeline" in out
    assert "prediction error" in out


def test_solver_tour(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/solver_tour.py", [], monkeypatch, capsys)
    assert "the solver zoo agrees" in out
    # All four solvers print the same optimum.
    lines = [l for l in out.splitlines() if "T*=" in l]
    assert len(lines) == 4
    values = {l.split("T*=")[1].split()[0] for l in lines}
    assert len(values) == 1


def test_job_size_prediction(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/job_size_prediction.py", ["0.5"], monkeypatch, capsys)
    assert "cost-efficient choice" in out
    assert "what-if" in out


def test_resilient_service(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/resilient_service.py", [], monkeypatch, capsys)
    assert "retry recovers" in out
    assert "source=stale" in out and "source=greedy" in out
    assert "breaker open" in out
    assert "all answered: True" in out


@pytest.mark.slow
def test_cesm_high_resolution(monkeypatch, capsys):
    out = _run(f"{EXAMPLES}/cesm_high_resolution.py", ["8192"], monkeypatch, capsys)
    assert "unconstrained ocean" in out
    assert "improvement" in out
