#!/usr/bin/env python3
"""§IV-C in action: how many nodes should this CESM job ask for?

Once HSLB's fitted curves exist, "the prediction of the optimal nodes to
run a job" is free: sweep the machine size, solve the allocation MINLP at
each, and read off two answers —

* the **cost-efficient** size ("nodes are increased until scaling is
  reduced to a predefined limit"), and
* the **shortest-time** size, beyond which more nodes buy nothing.

Also demonstrates the what-if API: predicted payoff of a 2x-more-scalable
ocean rewrite across machine sizes ("how replacing one component with
another will affect scaling", and therefore "what parts of the model need
to be rewritten to improve performance").

Usage:  python examples/job_size_prediction.py [efficiency_floor]
"""

import sys

from repro.cesm import CESMApplication, one_degree
from repro.cesm.layouts import Layout, formulate_layout
from repro.core import HSLBOptimizer, component_swap_effect, optimal_job_size
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

SWEEP = (64, 128, 256, 512, 1024, 2048, 4096)


def main() -> None:
    floor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    # Steps 1-2 of the pipeline: benchmark and fit once.
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    rng = default_rng(2014)
    suite = opt.gather([32, 64, 128, 256, 512, 1024, 2048], rng)
    models = {k: f.model for k, f in opt.fit(suite, rng).items()}

    def formulator(m, total):
        return formulate_layout(m, total, one_degree(), layout=Layout.HYBRID)

    # Question 1: how big a job?
    rec = optimal_job_size(models, formulator, SWEEP, efficiency_floor=floor)
    print(rec.render())
    print()

    # Question 2: is rewriting the ocean model worth it?
    ocn = models["ocn"]
    rewrite = PerformanceModel(a=ocn.a / 2, b=ocn.b, c=ocn.c, d=ocn.d / 2)
    base, swapped = component_swap_effect(
        models, formulator, (128, 512, 2048), replace={"ocn": rewrite}
    )
    print("what-if: ocean model rewritten to be 2x more scalable")
    for n, b, s in zip(base.node_counts, base.totals, swapped.totals):
        print(
            f"  {n:>5} nodes: {b:7.1f} s -> {s:7.1f} s "
            f"({100 * (1 - s / b):.1f}% faster)"
        )
    print()
    print("reading: the rewrite pays off only while the ocean is on the")
    print("critical path; past the crossover the atmosphere dominates and")
    print("engineering effort should go there instead.")


if __name__ == "__main__":
    main()
