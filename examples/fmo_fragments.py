#!/usr/bin/env python3
"""HSLB on the fragment molecular orbital method (the SC 2012 setting).

Demonstrates the regime the HSLB algorithm was invented for: a few large
tasks of diverse size, where dynamic load balancing is hobbled because the
number of tasks is much smaller than the number of processors (§I).

Compares three schedulers on the same synthetic protein-like system:

* HSLB          — MINLP-sized one-group-per-fragment (this library);
* idealized DLB — equal groups, longest-task-first dispatch with perfect
                  knowledge (an upper bound on real work stealing);
* uniform SLB   — equal groups, fragments dealt round-robin.

Then runs the same comparison on a water cluster (homogeneous tasks) to
show the advantage fading exactly where the paper says it should.

Usage:  python examples/fmo_fragments.py [n_fragments] [total_nodes]
"""

import sys

from repro.fmo import (
    FMOSimulator,
    greedy_dynamic_schedule,
    hslb_schedule,
    protein_like,
    uniform_static_schedule,
    water_cluster,
)
from repro.util.rng import default_rng
from repro.util.tables import format_table


def compare(system, total_nodes: int, seed: int) -> None:
    sim = FMOSimulator(system)
    hs, sol = hslb_schedule(system, total_nodes)
    dlb_groups = max(2, system.n_fragments // 3)
    rows = []
    for sched in (
        hs,
        greedy_dynamic_schedule(system, total_nodes, dlb_groups),
        uniform_static_schedule(system, total_nodes, system.n_fragments),
    ):
        run = sim.execute(sched, default_rng(seed))
        rows.append([sched.label, run.makespan, f"{run.load_imbalance:.2f}"])
    print(
        format_table(
            ["scheduler", "makespan s", "max/mean load"],
            rows,
            title=(
                f"{system.name}: {system.n_fragments} fragments "
                f"(size diversity {system.size_diversity():.2f}) "
                f"on {total_nodes} nodes"
            ),
            float_fmt=".1f",
        )
    )
    print(f"  HSLB group sizes: {hs.group_sizes}")
    print(f"  MINLP predicted makespan: {sol.objective:.1f} s "
          f"({sol.stats.nodes_explored} B&B nodes)")
    print()


def main() -> None:
    n_fragments = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    total_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    rng = default_rng(3)

    # Diverse tasks: HSLB's home turf.
    compare(protein_like(n_fragments, rng), total_nodes, seed=9)

    # Homogeneous tasks: every scheduler is fine, HSLB's edge shrinks.
    compare(water_cluster(n_fragments, rng), total_nodes, seed=9)


if __name__ == "__main__":
    main()
