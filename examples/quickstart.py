#!/usr/bin/env python3
"""Quickstart: balance CESM's components on a 128-node machine with HSLB.

Runs the full four-step pipeline of the paper (§III-F):

1. gather  — benchmark the coupled model at several machine sizes;
2. fit     — least-squares fit T_j(n) = a/n + b n^c + d per component;
3. solve   — MINLP for the optimal node allocation (LP/NLP branch-and-bound);
4. execute — run at the optimal allocation and compare with an emulated
             human expert doing the traditional manual tuning.

Usage:  python examples/quickstart.py [total_nodes]
"""

import sys

from repro.cesm import CESMApplication, manual_optimization, one_degree
from repro.core import HSLBOptimizer
from repro.core.report import comparison_table, speedup_summary
from repro.util.rng import default_rng


def main() -> None:
    total_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    rng = default_rng(2014)

    app = CESMApplication(one_degree())

    # The classical manual procedure: scaling runs, hand-picked candidate
    # layouts, trial-and-error queue submissions.
    manual = manual_optimization(app.simulator, total_nodes, rng)

    # HSLB: same benchmark data budget, but the decision step is a MINLP.
    optimizer = HSLBOptimizer(app)
    result = optimizer.run(
        benchmark_node_counts=[32, 64, 128, 256, 512, 1024, 2048],
        total_nodes=total_nodes,
        rng=rng,
    )

    print(
        comparison_table(
            manual.allocation,
            manual.execution,
            result,
            title=f"CESM 1-degree @ {total_nodes} nodes — manual vs HSLB",
        )
    )
    summary = speedup_summary(manual.execution, result)
    print()
    print(f"manual total:      {summary['manual_total']:.1f} s "
          f"(cost: {manual.executions_burned} trial executions)")
    print(f"HSLB predicted:    {summary['hslb_predicted_total']:.1f} s")
    print(f"HSLB actual:       {summary['hslb_actual_total']:.1f} s")
    print(f"improvement:       {summary['improvement_pct']:.1f}%")
    print()
    stats = result.solution.stats
    print(f"MINLP solve: {stats.nodes_explored} B&B nodes, "
          f"{stats.cuts_added} OA cuts, {stats.wall_time:.2f} s")
    for name, fit in result.fits.items():
        print(f"  fit {name}: R^2 = {fit.r_squared:.5f}  {fit.model!r}")


if __name__ == "__main__":
    main()
