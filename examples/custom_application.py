#!/usr/bin/env python3
"""Bring your own application: HSLB beyond CESM and FMO.

The paper closes with "any coarse-grained application with large tasks of
diverse size can benefit from the present approach".  This example shows
what that takes in this library: subclass :class:`repro.core.Application`
with four methods (benchmark / formulate / allocation_from_solution /
execute) and the pipeline does the rest.

The toy domain here is a three-stage data-analytics pipeline (ingest,
train, report) running stages concurrently on disjoint node groups, with a
dependency: `report` must wait for `train`, so they share a sequential
budget — structurally a miniature of CESM's layout constraints.

Usage:  python examples/custom_application.py
"""

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core import (
    Allocation,
    AllocationModelBuilder,
    Application,
    ExecutionResult,
    HSLBOptimizer,
)
from repro.core.report import allocation_table
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

#: Hidden "machine" truth the pipeline will have to discover by benchmarking.
TRUTH = {
    "ingest": PerformanceModel(a=900.0, d=4.0),
    "train": PerformanceModel(a=4200.0, b=0.02, c=1.0, d=9.0),
    "report": PerformanceModel(a=250.0, d=2.0),
}


class AnalyticsPipeline(Application):
    """ingest || (train -> report): the makespan is
    max(T_ingest, T_train + T_report) and groups share the machine."""

    def __init__(self, noise: float = 0.03) -> None:
        self.noise = noise

    @property
    def component_names(self) -> tuple[str, ...]:
        return ("ingest", "train", "report")

    # -- the machine -----------------------------------------------------

    def _observe(self, stage: str, nodes: int, rng: np.random.Generator) -> float:
        jitter = float(np.exp(rng.normal(0.0, self.noise)))
        return float(TRUTH[stage].time(nodes)) * jitter

    def benchmark(
        self, node_counts: Sequence[int], rng: np.random.Generator
    ) -> BenchmarkSuite:
        suite = BenchmarkSuite()
        for total in node_counts:
            # A benchmarking run splits the machine 25/60/15.
            split = {
                "ingest": max(1, total // 4),
                "train": max(1, (6 * total) // 10),
                "report": max(1, total // 8),
            }
            for stage, n in split.items():
                suite.add(
                    ComponentBenchmark(
                        stage, [ScalingObservation(n, self._observe(stage, n, rng))]
                    )
                )
        return suite

    # -- the model ---------------------------------------------------------

    def formulate(
        self, models: Mapping[str, PerformanceModel], total_nodes: int
    ) -> Problem:
        b = AllocationModelBuilder("analytics", total_nodes)
        n = {s: b.add_component(s, models[s]) for s in self.component_names}
        m = b.model
        T = m.var("T", lb=0.0, ub=b.time_upper_bound())
        # ingest concurrent with the train->report chain.
        m.add(T >= b.time_expr("ingest"), "span_ingest")
        m.add(T >= b.time_expr("train") + b.time_expr("report"), "span_chain")
        # train and report run sequentially, so they share one group;
        # machine hosts ingest plus the bigger of the two.
        m.add(n["ingest"] + n["train"] <= total_nodes, "cap_train")
        m.add(n["ingest"] + n["report"] <= total_nodes, "cap_report")
        m.minimize(T)
        return b.build()

    def allocation_from_solution(self, solution: Solution) -> Allocation:
        return Allocation(
            {s: round(solution.values[f"n_{s}"]) for s in self.component_names}
        )

    # -- execution -----------------------------------------------------------

    def execute(
        self, allocation: Allocation, rng: np.random.Generator
    ) -> ExecutionResult:
        times = {
            s: self._observe(s, allocation[s], rng) for s in self.component_names
        }
        total = max(times["ingest"], times["train"] + times["report"])
        return ExecutionResult(component_times=times, total_time=total)


def main() -> None:
    app = AnalyticsPipeline()
    result = HSLBOptimizer(app).run(
        benchmark_node_counts=[8, 16, 32, 64, 128],
        total_nodes=64,
        rng=default_rng(7),
    )
    print(allocation_table(result, title="analytics pipeline @ 64 nodes"))
    print()
    print(f"prediction error: {100 * result.prediction_error:.1f}%")
    print("constraint check: ingest+train =",
          result.allocation["ingest"] + result.allocation["train"], "<= 64")


if __name__ == "__main__":
    main()
