#!/usr/bin/env python3
"""Crash-and-recover: the resilient serving tier under injected faults.

The plain :class:`AllocationService` assumes solves finish.  In a real
deployment workers crash mid-solve, hang past any reasonable budget, and
occasionally return garbage.  This example walks the resilience stack:

1. **retries** — a crashed solve is re-dispatched (solves are
   fingerprint-seeded and idempotent) with deterministic backoff;
2. **degradation ladder** — when exact solving is unavailable the request
   walks explicit rungs: stale cache entry (age attached) -> greedy
   approximation -> typed rejection; every answer carries its ``source``;
3. **circuit breaker** — a request family that keeps killing workers is
   short-circuited straight to the ladder instead of burning more workers;
4. **supervised pool** — a real worker process killed mid-batch is
   contained to its slot, replaced under a restart budget, and the victim
   request recovered — without restarting the service.

Usage:  python examples/resilient_service.py
"""

from repro.faults import ChaosPlan
from repro.perf.model import PerformanceModel
from repro.service import (
    AllocationService,
    BatchExecutor,
    ComponentSpec,
    ResiliencePolicy,
    RetryPolicy,
    SolveRequest,
)

CURVES = {
    "atm": dict(a=1200.0, b=0.5, c=1.1, d=2.0),
    "ocn": dict(a=800.0, b=0.3, c=1.2, d=1.0),
    "ice": dict(a=300.0, b=0.2, c=1.0, d=0.5),
}


def request(total_nodes: int) -> SolveRequest:
    components = {
        name: ComponentSpec(model=PerformanceModel(**params))
        for name, params in CURVES.items()
    }
    return SolveRequest(components=components, total_nodes=total_nodes)


def show(label: str, response) -> None:
    extra = ""
    if response.source == "stale":
        extra = f", age {response.staleness:.0f}s"
    print(
        f"{label:22s} source={response.source:<7s} "
        f"T={response.objective:.2f}s  {dict(sorted(response.allocation.items()))}"
        f"{extra}"
    )


def main() -> None:
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        max_stale=3600.0,
        restart_budget=8,
    )

    # -- 1. retries: every first attempt crashes, every retry lands -------
    print("== retries: first attempt always crashes, retry recovers ==")
    flaky = AllocationService(
        resilience=policy,
        chaos=ChaosPlan(seed=11, crash_rate=0.95, immune_after=1),
    )
    show("crash -> retry", flaky.submit(request(64)))
    print(f"retries spent: {flaky.metrics.retries}, "
          f"crashes seen: {flaky.metrics.worker_crashes}")

    # -- 2. the degradation ladder ----------------------------------------
    print("\n== degradation ladder: when exact solving is gone ==")
    clock = {"now": 0.0}
    service = AllocationService(
        ttl=600.0, clock=lambda: clock["now"], resilience=policy
    )
    show("exact", service.submit(request(64)))

    clock["now"] += 1800.0  # the cached answer is now 30 minutes stale
    dead_chaos = ChaosPlan(seed=0, crash_rate=0.97)  # no attempt survives
    from repro.faults.chaos import chaotic_solve
    from repro.service.solver import solve_request

    service._solve = chaotic_solve(dead_chaos, solve_request)
    show("stale rung", service.submit(request(64)))
    show("greedy rung", service.submit(request(96)))  # nothing cached

    # -- 3. breaker: the family is short-circuited after the failures -----
    service.submit(request(48))  # third failed family member: breaker opens
    state = service.breaker.state(request(48).family_key())
    blocked = service.submit(request(40))  # blocked before any solve attempt
    show(f"breaker {state}", blocked)
    print(f"degraded answers: stale={service.metrics.degraded_stale} "
          f"greedy={service.metrics.degraded_greedy} "
          f"breaker blocks={service.metrics.breaker_blocks}")

    # -- 4. supervised pool: a real worker death, recovered ---------------
    print("\n== supervised pool: real worker crashes, batch recovers ==")
    pooled = AllocationService(
        resilience=policy,
        chaos=ChaosPlan(seed=5, crash_rate=0.9, immune_after=1),
    )
    executor = BatchExecutor(pooled, max_workers=2, deadline=30.0)
    responses = executor.run([request(n) for n in (24, 32, 40, 56)])
    for r in responses:
        show("recovered batch", r)
    m = pooled.metrics
    print(f"worker crashes: {m.worker_crashes}, replacements: "
          f"{m.worker_restarts}, all answered: {len(responses) == 4}")


if __name__ == "__main__":
    main()
