#!/usr/bin/env python3
"""Fault injection: run the HSLB pipeline on a machine that misbehaves.

A deterministic ``FaultPlan`` makes 10% of benchmark runs die, inflates a
few timers, and kills the ocean's nodes halfway through the production run.
The pipeline absorbs all of it:

* gather retries failed runs with capped exponential backoff;
* fit prunes straggler-flagged observations;
* solve records which tier of the degradation chain produced the answer;
* execute survives the crash by re-solving on the surviving nodes.

The same seed always injects the same faults, so a "flaky machine" run is
as reproducible as a clean one.

Usage:  python examples/fault_injection.py [fault_seed]
"""

import sys

from repro.cesm import CESMApplication, one_degree
from repro.core import HSLBOptimizer
from repro.core.report import allocation_table, resilience_summary
from repro.faults import FaultPlan
from repro.fmo.gddi import GroupSchedule, even_group_sizes
from repro.fmo.molecules import water_cluster
from repro.fmo.recovery import STRATEGIES, run_with_crash
from repro.fmo.simulator import FMOSimulator
from repro.util.rng import default_rng
from repro.util.tables import format_table


def cesm_under_faults(fault_seed: int) -> None:
    plan = FaultPlan(
        seed=fault_seed,
        fail_rate=0.10,  # one in ten benchmark runs dies
        straggler_rate=0.05,  # one in twenty timers is inflated
        crash_component="ocn",  # ...and the ocean dies mid-run
        crash_fraction=0.5,
    )
    print(f"fault plan: {plan.describe()}\n")

    app = CESMApplication(one_degree(), faults=plan)
    result = HSLBOptimizer(app).run(
        benchmark_node_counts=[32, 64, 128, 256, 512],
        total_nodes=128,
        rng=default_rng(2014),
    )
    print(allocation_table(result, title="CESM 1-degree @ 128 nodes, faults on"))
    print()
    print(resilience_summary(result))


def fmo_group_loss() -> None:
    """The FMO side: lose one GDDI group mid-run, compare recovery."""
    system = water_cluster(24, default_rng(7))
    sim = FMOSimulator(system)
    schedule = GroupSchedule(
        group_sizes=even_group_sizes(48, 4),
        assignment=tuple(i % 4 for i in range(24)),
        label="even-4",
    )
    rows = []
    for strategy in STRATEGIES:
        out = run_with_crash(
            sim,
            schedule,
            crash_group=1,
            crash_fraction=0.5,
            strategy=strategy,
            rng=default_rng(11),
        )
        rows.append([strategy, out.makespan, f"{out.degradation:+.1%}"])
    print(
        format_table(
            ["recovery", "makespan s", "vs fault-free"],
            rows,
            title=f"{system.name}: group 1 of 4 lost at 50% of the run",
        )
    )


def main() -> None:
    fault_seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    cesm_under_faults(fault_seed)
    print()
    fmo_group_loss()


if __name__ == "__main__":
    main()
