#!/usr/bin/env python3
"""A tour of the MINLP toolkit (the AMPL + MINOTAUR stand-in).

Walks through the machinery the HSLB pipeline uses under the hood:

1. declarative modeling with operator overloading (the AMPL role);
2. symbolic differentiation and outer-approximation cuts (paper eq. 4);
3. the solver zoo — LP/NLP single-tree B&B, multi-tree OA, NLP-based B&B,
   and brute-force enumeration — all agreeing on a convex model;
4. the performance-model fitting layer (Table II) recovering known
   parameters from noisy scaling data.

Usage:  python examples/solver_tour.py
"""

import numpy as np

from repro.minlp import (
    Model,
    linearize,
    solve_brute_force,
    solve_minlp_nlpbb,
    solve_minlp_oa,
    solve_minlp_oa_multitree,
)
from repro.minlp.expr import VarRef
from repro.perf.fitting import fit_performance_model
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng


def section(title: str) -> None:
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("1. modeling")
    m = Model("two-component allocation")
    t = m.var("T", lb=0.0, ub=1e4)
    n1 = m.integer_var("n1", 1, 60)
    n2 = m.integer_var("n2", 1, 60)
    m.add(t >= 480.0 / n1 + 3.0, "comp1")
    m.add(t >= 240.0 / n2 + 1.0, "comp2")
    m.add(n1 + n2 <= 64, "capacity")
    m.minimize(t)
    problem = m.build()
    print(problem)
    for con in problem.constraints:
        kind = "linear" if con.is_linear() else "nonlinear"
        print(f"  {con.name}: {kind}")

    section("2. symbolic derivatives and OA cuts")
    n = VarRef("n")
    perf = 480.0 / n + 0.001 * n**1.5 + 3.0
    print("T(n)      =", perf)
    print("dT/dn     =", perf.diff("n"))
    print("T(32)     =", f"{perf.evaluate({'n': 32.0}):.4f}")
    cut = linearize(perf, {"n": 32.0})
    print("cut @32   =", cut)
    print("cut is a global under-estimator of the convex T:",
          all(
              cut.evaluate({"n": x}) <= perf.evaluate({"n": x}) + 1e-9
              for x in (2.0, 16.0, 55.0)
          ))

    section("3. the solver zoo agrees")
    for name, solver in [
        ("LP/NLP single-tree B&B (the paper's)", solve_minlp_oa),
        ("multi-tree outer approximation", solve_minlp_oa_multitree),
        ("NLP-based branch-and-bound", solve_minlp_nlpbb),
        ("brute-force enumeration", solve_brute_force),
    ]:
        sol = solver(problem)
        print(
            f"  {name:38s} T*={sol.objective:8.4f}  "
            f"n1={sol.values['n1']:.0f} n2={sol.values['n2']:.0f}  "
            f"[{sol.status.value}]"
        )

    section("4. fitting the performance model (Table II)")
    truth = PerformanceModel(a=27380.0, b=1e-3, c=1.0, d=43.0)  # 1-degree atm
    rng = default_rng(0)
    nodes = np.array([32.0, 64.0, 128.0, 512.0, 2048.0])
    observed = truth.time(nodes) * np.exp(rng.normal(0, 0.02, nodes.size))
    fit = fit_performance_model(nodes, observed, rng=rng)
    print(f"  truth:  {truth!r}")
    print(f"  fitted: {fit.model!r}")
    print(f"  R^2 = {fit.r_squared:.5f} over D = {fit.n_points} points")
    probe = 1024.0
    print(
        f"  prediction at n={probe:.0f}: fitted {fit.model.time(probe):.2f} s "
        f"vs truth {truth.time(probe):.2f} s"
    )


if __name__ == "__main__":
    main()
