#!/usr/bin/env python3
"""The §IV-B story: unconstraining the ocean node counts at 1/8 degree.

The pre-release CESM1.2 hard-coded a handful of "known good" ocean node
counts (480, 512, 2356, 3136, 4564, 6124, 19460).  At 32,768 nodes that
list pins the ocean at 19,460 nodes — far more than it needs — and HSLB can
only balance around it.  Dropping the list lets the MINLP pick ~10-12k
ocean nodes and hand the surplus to the atmosphere: the paper reports ~40%
better predicted and ~25% better actual time; this example regenerates that
comparison on the simulator (plus the decomposition-risk caveat: arbitrary
ocean counts may hit untested decompositions and run slower than the fit
predicts, which is exactly what the paper observed at 11,880 nodes).

Usage:  python examples/cesm_high_resolution.py [total_nodes]
"""

import sys

from repro.cesm import CESMApplication, eighth_degree
from repro.core import HSLBOptimizer
from repro.core.report import allocation_table
from repro.util.rng import default_rng

CAMPAIGN = [2048, 4096, 8192, 16384, 32768]


def main() -> None:
    total_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 32768

    results = {}
    for constrained in (True, False):
        app = CESMApplication(eighth_degree(constrained_ocean=constrained))
        result = HSLBOptimizer(app).run(
            CAMPAIGN, total_nodes, default_rng(2014)
        )
        label = "constrained" if constrained else "unconstrained"
        results[label] = result
        print(
            allocation_table(
                result,
                title=f"1/8-degree @ {total_nodes} nodes — {label} ocean",
            )
        )
        print()

    con = results["constrained"]
    unc = results["unconstrained"]
    pred_gain = 100.0 * (1.0 - unc.predicted_total / con.predicted_total)
    act_gain = 100.0 * (1.0 - unc.actual_total / con.actual_total)
    print(f"predicted improvement from freeing the ocean: {pred_gain:.1f}%  "
          f"(paper: ~29% at 32768)")
    print(f"actual improvement:                           {act_gain:.1f}%  "
          f"(paper: ~22-25%)")
    print()
    print("note the predicted-vs-actual gap on the unconstrained ocean: the")
    print("fit was built from sweet-spot data, and arbitrary node counts can")
    print("land on untested decompositions (the paper's 11,880-node lesson).")


if __name__ == "__main__":
    main()
