#!/usr/bin/env python3
"""Allocation-as-a-service: the HSLB optimizer behind a cache.

An allocation *service* answers many overlapping "how do I split N nodes
across these components?" queries — think a scheduler asking for every
queued job size, or a capacity planner sweeping machine sizes.  This
example walks the three mechanisms the service stacks on the static
optimizer:

1. **fingerprint cache** — identical problems (any component order, any
   last-bit float noise) share one cache slot; hits are bit-identical to
   the solve that produced them and cost microseconds;
2. **warm-start pool**   — a miss whose *family* (same curves, different
   budget) has a cached member seeds the branch-and-bound with that
   neighbor's allocation, measurably shrinking the search;
3. **batch executor**    — deduplication, donor-first ordering, and
   per-request deadlines for answering a whole request file at once.

Usage:  python examples/allocation_service.py
"""

from repro.perf.model import PerformanceModel
from repro.service import (
    AllocationService,
    BatchExecutor,
    ComponentSpec,
    SolveRequest,
)

CURVES = {
    "atm": dict(a=1200.0, b=0.5, c=1.1, d=2.0),
    "ocn": dict(a=800.0, b=0.3, c=1.2, d=1.0),
    "ice": dict(a=300.0, b=0.2, c=1.0, d=0.5),
}


def request(total_nodes: int) -> SolveRequest:
    components = {
        name: ComponentSpec(model=PerformanceModel(**params))
        for name, params in CURVES.items()
    }
    return SolveRequest(components=components, total_nodes=total_nodes)


def main() -> None:
    service = AllocationService(cache_capacity=64)

    # -- 1. cache: the second identical query never reaches the solver ----
    first = service.submit(request(64))
    again = service.submit(request(64))
    print(f"cold solve : {first.allocation}  T={first.objective:.2f}s  "
          f"({first.latency * 1e3:.1f} ms, {first.iterations} iterations)")
    print(f"cache hit  : {again.allocation}  T={again.objective:.2f}s  "
          f"({again.latency * 1e3:.3f} ms, bit-identical: "
          f"{again.allocation == first.allocation and again.objective == first.objective})")

    # -- 2. warm start: a neighboring budget borrows the 64-node answer ---
    neighbor = service.submit(request(72))
    print(f"\n72 nodes, warm-started from the 64-node solution "
          f"(donor {neighbor.donor[:8]}…):")
    print(f"  {neighbor.allocation}  T={neighbor.objective:.2f}s  "
          f"in {neighbor.iterations} iterations")

    # -- 3. batch: a machine-size sweep with duplicates, in one call ------
    sweep = [request(n) for n in (48, 56, 64, 64, 80, 96, 96, 128)]
    responses = BatchExecutor(service).run(sweep)
    print("\nmachine-size sweep (duplicates answered from cache):")
    for req, resp in zip(sweep, responses):
        tag = "hit " if resp.cached else ("warm" if resp.warm_started else "cold")
        print(f"  {req.total_nodes:4d} nodes  [{tag}]  {resp.allocation}  "
              f"T={resp.objective:.2f}s")

    print()
    print(service.metrics.render())


if __name__ == "__main__":
    main()
